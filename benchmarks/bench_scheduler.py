"""Scheduler ablation: frontier-aware superstep scheduling vs the dense scan.

Two studies, one report:

1. **BFS sweep** — manual BFS (the canonical frontier workload) on stock
   uniform-random graphs of growing size at a fixed sparse average degree
   (the high-diameter regime GraphIt's direction switching targets), plus
   the three Table 1 registry graphs for contrast.  On sparse graphs the
   dense scan pays ``diameter x num_nodes`` idle visits while the frontier
   is a sliver; on the dense, small-diameter registry graphs message volume
   dominates and the two schedulers are expected to tie — the sweep records
   both regimes honestly.  The acceptance bar: frontier scheduling is at
   least 2x faster on BFS over the largest stock random graph, bit-identical
   outputs and metrics ledger included.

2. **Parity matrix** — the correctness half of the claim: every algorithm,
   generated and manual, plus one fault-injected recovery run per strategy,
   produces an identical ``parity_key()`` (and outputs) under both
   schedulers.
"""

from __future__ import annotations

import time

from repro.bench import (
    bfs_scheduler_sweep,
    deep_bfs_root,
    render_table,
    scheduler_parity,
)
from repro.graphgen import uniform_random
from repro.graphgen.registry import TABLE1, load_graph

from conftest import emit_report

#: sparse average degree for the random-graph sweep: just past the
#: percolation threshold, where the giant component is deep (high diameter)
#: and the per-superstep frontier is thin
SWEEP_DEGREE = 1.2
#: sweep sizes as multiples of the base 40k-node graph at scale 1.0
SWEEP_FRACTIONS = (0.25, 0.5, 1.0)
SPEEDUP_FLOOR = 2.0


def _sweep_graphs(scale: float):
    graphs = []
    for key in TABLE1:
        g = load_graph(key, scale)
        graphs.append((key, g, deep_bfs_root(g)))
    for fraction in SWEEP_FRACTIONS:
        n = max(1000, int(40_000 * scale * fraction))
        g = uniform_random(n, int(n * SWEEP_DEGREE), seed=1)
        graphs.append((f"uniform-{n}", g, deep_bfs_root(g)))
    return graphs


def test_scheduler_report(benchmark, scale, report_dir):
    benchmark.pedantic(lambda: _scheduler_report(scale, report_dir), rounds=1, iterations=1)


def _scheduler_report(scale, report_dir):
    start = time.perf_counter()
    rows = bfs_scheduler_sweep(_sweep_graphs(scale), repeats=3)
    parity_rows = scheduler_parity(scale=max(0.125, scale / 4))
    wall = time.perf_counter() - start

    assert all(r.identical for r in rows), [r.graph for r in rows if not r.identical]
    assert all(r.identical for r in parity_rows), [
        (r.algorithm, r.variant, r.recovery) for r in parity_rows if not r.identical
    ]
    # the headline number: frontier scheduling on the largest stock random
    # graph (the last sweep entry) beats the dense scan by >= 2x
    largest = rows[-1]
    assert largest.speedup >= SPEEDUP_FLOOR, (
        f"frontier speedup on {largest.graph} is {largest.speedup:.2f}x "
        f"(needs >= {SPEEDUP_FLOOR}x)"
    )

    sweep_table = render_table(
        ["graph", "nodes", "edges", "supersteps", "messages", "reached",
         "dense", "frontier", "speedup", "bit-identical"],
        [
            [
                r.graph,
                r.num_nodes,
                r.num_edges,
                r.supersteps,
                r.messages,
                r.reached,
                f"{r.dense_seconds * 1000:.1f}ms",
                f"{r.frontier_seconds * 1000:.1f}ms",
                f"{r.speedup:.2f}x",
                "yes" if r.identical else "NO",
            ]
            for r in rows
        ],
    )
    parity_table = render_table(
        ["algorithm", "variant", "graph", "fault recovery", "parity"],
        [
            [
                r.algorithm,
                r.variant,
                r.graph,
                r.recovery or "-",
                "identical" if r.identical else "DIVERGED",
            ]
            for r in parity_rows
        ],
    )

    emit_report(
        report_dir,
        "scheduler",
        "Superstep scheduling: frontier (sparse active set, batched routing)\n"
        f"vs dense scan — manual BFS, best of 3, 4 workers; uniform-* are\n"
        f"stock uniform-random graphs at average degree {SWEEP_DEGREE} (sparse,\n"
        f"high-diameter regime); sweep wall time {wall:.2f}s\n"
        + sweep_table
        + "\n\nOn sparse high-diameter graphs the dense scan pays\n"
        "diameter x num_nodes idle vertex visits while the frontier is a\n"
        "handful of vertices per superstep; on the dense, small-diameter\n"
        "registry graphs message volume dominates and the schedulers tie.\n"
        "Every run above is bit-identical across schedulers (outputs and\n"
        "the full metered ledger).\n\n"
        "Scheduler parity matrix (dense vs frontier, parity_key + outputs):\n"
        + parity_table,
    )
