"""Parser unit tests: every construct of the Green-Marl subset plus errors."""

import pytest

from repro.lang import ast, parse_procedure, pretty
from repro.lang.ast import (
    Assign,
    Bfs,
    Binary,
    BinOp,
    Cast,
    DeferredAssign,
    Foreach,
    If,
    IterKind,
    ReduceAssign,
    ReduceExpr,
    ReduceOp,
    Return,
    Ternary,
    Unary,
    UnOp,
    VarDecl,
    While,
)
from repro.lang.errors import ParseError
from repro.lang import types as ty


def parse_body(stmts: str, params: str = "G: Graph"):
    proc = parse_procedure(f"Procedure p({params}) {{ {stmts} }}")
    return proc.body.stmts


def parse_expr_via_return(expr: str, params: str = "G: Graph"):
    proc = parse_procedure(f"Procedure p({params}): Double {{ Return {expr}; }}")
    stmt = proc.body.stmts[0]
    assert isinstance(stmt, Return)
    return stmt.expr


class TestProcedureHeader:
    def test_simple_signature(self):
        proc = parse_procedure("Procedure f(G: Graph) { }")
        assert proc.name == "f"
        assert len(proc.params) == 1
        assert proc.params[0].param_type == ty.GRAPH

    def test_input_output_split(self):
        proc = parse_procedure(
            "Procedure f(G: Graph, K: Int; out: N_P<Int>): Float { }"
        )
        assert [p.is_output for p in proc.params] == [False, False, True]
        assert proc.return_type == ty.FLOAT

    def test_shared_type_group(self):
        proc = parse_procedure("Procedure f(G: Graph, e, d: Double) { }")
        assert [p.name for p in proc.params] == ["G", "e", "d"]
        assert proc.params[1].param_type == proc.params[2].param_type == ty.DOUBLE

    def test_property_types(self):
        proc = parse_procedure("Procedure f(G: Graph, a: N_P<Int>, b: E_P<Double>) { }")
        assert proc.params[1].param_type == ty.NodePropType(ty.INT)
        assert proc.params[2].param_type == ty.EdgePropType(ty.DOUBLE)

    def test_graph_binding_suffix_ignored(self):
        proc = parse_procedure("Procedure f(G: Graph, root: Node(G), p: N_P<Int>(G)) { }")
        assert proc.params[1].param_type == ty.NODE

    def test_missing_paren_is_error(self):
        with pytest.raises(ParseError):
            parse_procedure("Procedure f(G: Graph { }")


class TestStatements:
    def test_var_decl_with_init(self):
        (stmt,) = parse_body("Int x = 3;")
        assert isinstance(stmt, VarDecl)
        assert stmt.names == ["x"]
        assert stmt.decl_type == ty.INT

    def test_multi_name_decl(self):
        (stmt,) = parse_body("N_P<Bool> a, b;")
        assert stmt.names == ["a", "b"]

    def test_assignment(self):
        (stmt,) = parse_body("Int x = 0; x = 4;")[1:]
        assert isinstance(stmt, Assign)

    def test_reduce_assignments(self):
        stmts = parse_body("Int x = 0; x += 1; x *= 2; x min= 3; x max= 4;")
        ops = [s.op for s in stmts[1:]]
        assert ops == [ReduceOp.SUM, ReduceOp.PRODUCT, ReduceOp.MIN, ReduceOp.MAX]

    def test_bool_reduce_assignments(self):
        stmts = parse_body("Bool b = True; b &= False; b |= True;")
        assert [s.op for s in stmts[1:]] == [ReduceOp.ALL, ReduceOp.ANY]

    def test_increment_desugars_to_add(self):
        (decl, stmt) = parse_body("Int x = 0; x++;")
        assert isinstance(stmt, Assign)
        assert isinstance(stmt.expr, Binary)
        assert stmt.expr.op is BinOp.ADD

    def test_deferred_assignment_with_binding(self):
        stmts = parse_body(
            "Foreach (t: G.Nodes) { t.p <= 1.0 @ t; }", "G: Graph, p: N_P<Double>"
        )
        inner = stmts[0].body.stmts[0]
        assert isinstance(inner, DeferredAssign)
        assert inner.bind == "t"

    def test_reduce_assign_binding(self):
        stmts = parse_body("Int s = 0; Foreach (t: G.Nodes) { s += 1 @ t; }")
        inner = stmts[1].body.stmts[0]
        assert isinstance(inner, ReduceAssign) and inner.bind == "t"

    def test_if_else(self):
        (stmt,) = parse_body("If (True) { Int a = 1; } Else { Int b = 2; }")
        assert isinstance(stmt, If) and stmt.other is not None

    def test_if_single_statement_arms(self):
        (stmt,) = parse_body("Int x = 0; If (x == 0) x = 1; Else x = 2;")[1:]
        assert isinstance(stmt, If)
        assert len(stmt.then.stmts) == 1

    def test_while(self):
        (stmt,) = parse_body("While (False) { }")
        assert isinstance(stmt, While) and not stmt.do_while

    def test_do_while(self):
        (stmt,) = parse_body("Do { } While (False);")
        assert isinstance(stmt, While) and stmt.do_while

    def test_return_without_value(self):
        (stmt,) = parse_body("Return;")
        assert isinstance(stmt, Return) and stmt.expr is None


class TestLoops:
    def test_foreach_over_nodes(self):
        (stmt,) = parse_body("Foreach (n: G.Nodes) { }")
        assert isinstance(stmt, Foreach)
        assert stmt.parallel and stmt.source.kind is IterKind.NODES

    def test_sequential_for(self):
        (stmt,) = parse_body("For (n: G.Nodes) { }")
        assert not stmt.parallel

    def test_neighborhood_kinds(self):
        src = """
        Foreach (n: G.Nodes) {
          Foreach (a: n.Nbrs) { }
        }
        Foreach (n: G.Nodes) {
          Foreach (b: n.InNbrs) { }
        }
        Foreach (n: G.Nodes) {
          Foreach (c: n.OutNbrs) { }
        }
        """
        stmts = parse_body(src)
        kinds = [s.body.stmts[0].source.kind for s in stmts]
        assert kinds == [IterKind.NBRS, IterKind.IN_NBRS, IterKind.NBRS]

    def test_filter_bracket_syntax(self):
        (stmt,) = parse_body("Foreach (n: G.Nodes)[n == n] { }")
        assert stmt.filter is not None

    def test_filter_paren_syntax(self):
        (stmt,) = parse_body("Foreach (n: G.Nodes)(n == n) { }")
        assert stmt.filter is not None

    def test_unknown_iteration_range(self):
        with pytest.raises(ParseError) as err:
            parse_body("Foreach (n: G.Vertices) { }")
        assert "Vertices" in str(err.value)


class TestBfs:
    SRC = """
    Procedure f(G: Graph, s: Node, sigma: N_P<Float>) {
      InBFS (v: G.Nodes From s)[v != s] {
        v.sigma = Sum(w: v.UpNbrs){w.sigma};
      }
      InReverse[v != s] {
        v.sigma += 1.0;
      }
    }
    """

    def test_structure(self):
        proc = parse_procedure(self.SRC)
        (stmt,) = proc.body.stmts
        assert isinstance(stmt, Bfs)
        assert stmt.iterator == "v"
        assert stmt.filter is not None
        assert stmt.reverse_body is not None and stmt.reverse_filter is not None

    def test_up_nbrs_inside_body(self):
        proc = parse_procedure(self.SRC)
        stmt = proc.body.stmts[0]
        reduce = stmt.body.stmts[0].expr
        assert isinstance(reduce, ReduceExpr)
        assert reduce.source.kind is IterKind.UP_NBRS

    def test_forward_only(self):
        proc = parse_procedure(
            "Procedure f(G: Graph, s: Node) { InBFS (v: G.Nodes From s) { } }"
        )
        assert proc.body.stmts[0].reverse_body is None

    def test_bfs_must_iterate_nodes(self):
        with pytest.raises(ParseError):
            parse_procedure(
                "Procedure f(G: Graph, s: Node) { InBFS (v: s.Nbrs From s) { } }"
            )


class TestExpressions:
    def test_precedence_mul_over_add(self):
        e = parse_expr_via_return("1 + 2 * 3")
        assert isinstance(e, Binary) and e.op is BinOp.ADD
        assert isinstance(e.rhs, Binary) and e.rhs.op is BinOp.MUL

    def test_precedence_cmp_over_and(self):
        e = parse_expr_via_return("1 < 2 && 3 < 4")
        assert e.op is BinOp.AND

    def test_and_over_or(self):
        e = parse_expr_via_return("True && False || True")
        assert e.op is BinOp.OR

    def test_parenthesized(self):
        e = parse_expr_via_return("(1 + 2) * 3")
        assert e.op is BinOp.MUL

    def test_ternary(self):
        e = parse_expr_via_return("True ? 1 : 2")
        assert isinstance(e, Ternary)

    def test_nested_ternary_right_associative(self):
        e = parse_expr_via_return("True ? 1 : False ? 2 : 3")
        assert isinstance(e.other, Ternary)

    def test_cast(self):
        e = parse_expr_via_return("(Double) 3")
        assert isinstance(e, Cast) and e.to_type == ty.DOUBLE

    def test_abs(self):
        e = parse_expr_via_return("|1 - 2|")
        assert isinstance(e, Unary) and e.op is UnOp.ABS

    def test_plus_inf_and_minus_inf(self):
        pos = parse_expr_via_return("+INF")
        neg = parse_expr_via_return("-INF")
        assert not pos.negative and neg.negative

    def test_unary_not(self):
        e = parse_expr_via_return("!True")
        assert isinstance(e, Unary) and e.op is UnOp.NOT

    def test_method_chain_to_edge(self):
        stmts = parse_body(
            "Foreach (n: G.Nodes) { Foreach (s: n.Nbrs) { Int d = s.ToEdge().w; } }",
            "G: Graph, w: E_P<Int>",
        )
        decl = stmts[0].body.stmts[0].body.stmts[0]
        assert isinstance(decl.init, ast.PropAccess)
        assert isinstance(decl.init.target, ast.MethodCall)

    def test_mod_operator(self):
        e = parse_expr_via_return("5 % 2")
        assert e.op is BinOp.MOD


class TestReduceExpressions:
    def test_sum_with_filter_and_body(self):
        e = parse_expr_via_return(
            "Sum(u: G.Nodes)[u == u]{1.0}",
        )
        assert isinstance(e, ReduceExpr)
        assert e.op is ReduceOp.SUM
        assert e.filter is not None and e.body is not None

    def test_count_takes_no_body(self):
        e = parse_expr_via_return("Count(u: G.Nodes)[u == u]")
        assert e.op is ReduceOp.COUNT and e.body is None

    def test_exist_predicate_in_braces_moves_to_filter(self):
        e = parse_expr_via_return("Exist(u: G.Nodes){u == u}")
        assert e.op is ReduceOp.ANY
        assert e.filter is not None and e.body is None

    def test_all_spelling(self):
        e = parse_expr_via_return("All(u: G.Nodes)[u == u]")
        assert e.op is ReduceOp.ALL

    def test_avg(self):
        e = parse_expr_via_return("Avg(u: G.Nodes){1.0}")
        assert e.op is ReduceOp.AVG

    def test_sum_requires_body(self):
        with pytest.raises(ParseError):
            parse_expr_via_return("Sum(u: G.Nodes)[u == u]")


class TestParseErrors:
    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse_procedure("Procedure f(G: Graph) { } garbage")

    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse_body("Int x = 1")

    def test_bad_assignment_operator(self):
        with pytest.raises(ParseError):
            parse_body("Int x = 0; x -> 3;")

    def test_error_reports_position(self):
        with pytest.raises(ParseError) as err:
            parse_procedure("Procedure f(G: Graph) {\n  Int = 3;\n}")
        assert err.value.span.line == 2


class TestRoundTrip:
    def test_algorithm_sources_round_trip(self):
        from repro.algorithms.sources import ALGORITHMS, load_source

        for name in ALGORITHMS:
            first = pretty(parse_procedure(load_source(name)))
            second = pretty(parse_procedure(first))
            assert first == second, name
