"""Execution backends: cross-backend parity matrix + codec + mp smoke.

The contract under test: every backend is observationally identical on
``RunMetrics.parity_key()`` and on program outputs — the dict simulator
(the oracle), the columnar data plane, and the multiprocessing backend
may only differ in wall time, memory, and the ``metrics.backend`` label.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import default_args
from repro.compiler import compile_algorithm
from repro.graphgen.registry import load_graph
from repro.pregel.backend import BACKENDS, BackendUnsupported, get_backend
from repro.pregel.backend.codec import MessageCodec
from repro.pregel.backend.mp import mp_available
from repro.pregel.ft import CrashEvent, FaultPlan, FaultTolerance
from repro.pregelir.ir import INF_VALUE

ALGORITHMS = (
    "avg_teen_cnt",
    "pagerank",
    "conductance",
    "sssp",
    "bipartite_matching",
    "bc_approx",
)

needs_mp = pytest.mark.skipif(
    not mp_available(),
    reason="needs fork start-method and multiprocessing.shared_memory",
)


@pytest.fixture(scope="module")
def graph():
    return load_graph("twitter", 0.15)


@pytest.fixture(scope="module")
def programs():
    return {alg: compile_algorithm(alg).program for alg in ALGORITHMS}


def run_on(programs, graph, alg, backend, **opts):
    program = programs[alg]
    return program.run(graph, default_args(alg, graph), backend=backend, **opts)


def assert_parity(oracle, other, *, ignore_partition_keys=False):
    key_a = oracle.metrics.parity_key()
    key_b = other.metrics.parity_key()
    if ignore_partition_keys:
        # Cross-worker-count comparison: the per-worker sent split and the
        # cross-worker traffic depend on the partitioning (identically so
        # on the simulator), so only the partition-independent keys and
        # the outputs must match.
        for key in ("worker_sent", "net_messages", "net_bytes"):
            key_a.pop(key)
            key_b.pop(key)
    assert key_a == key_b
    assert oracle.outputs == other.outputs
    assert oracle.result == other.result


class TestColumnarParityMatrix:
    """6 algorithms x {frontier, dense} x {sim, columnar}: bit-identical."""

    @pytest.mark.parametrize("alg", ALGORITHMS)
    @pytest.mark.parametrize("scheduling", ("frontier", "dense"))
    def test_matrix(self, programs, graph, alg, scheduling):
        sim = run_on(programs, graph, alg, "sim", scheduling=scheduling)
        col = run_on(programs, graph, alg, "columnar", scheduling=scheduling)
        assert sim.metrics.backend == "sim"
        assert col.metrics.backend == "columnar"
        assert_parity(sim, col)

    @pytest.mark.parametrize("alg", ("pagerank", "sssp"))
    def test_typed_columns_round_trip_outputs_as_lists(self, programs, graph, alg):
        col = run_on(programs, graph, alg, "columnar")
        for column in col.outputs.values():
            assert isinstance(column, list)

    def test_backend_outside_parity_key(self, programs, graph):
        run = run_on(programs, graph, "pagerank", "columnar")
        assert "backend" not in run.metrics.parity_key()
        assert "backend=columnar" in run.metrics.summary()


class TestColumnarFallbacks:
    """Robustness features keep working on columnar via tuple staging."""

    def test_ft_crash_recovery_parity(self, programs, graph):
        plan = FaultPlan(checkpoint_every=2, crashes=(CrashEvent(1, 3),))
        sim = run_on(programs, graph, "pagerank", "sim", ft=FaultTolerance(plan))
        plan = FaultPlan(checkpoint_every=2, crashes=(CrashEvent(1, 3),))
        col = run_on(programs, graph, "pagerank", "columnar", ft=FaultTolerance(plan))
        assert sim.metrics.faults_injected == col.metrics.faults_injected == 1
        assert_parity(sim, col)

    def test_combiners_parity(self, programs, graph):
        sim = run_on(programs, graph, "sssp", "sim", use_combiners=True)
        col = run_on(programs, graph, "sssp", "columnar", use_combiners=True)
        assert_parity(sim, col)

    def test_tracer_sees_same_superstep_stream(self, programs, graph):
        from repro.obs import Tracer

        traces = {}
        for backend in ("sim", "columnar"):
            tracer = Tracer()
            run_on(programs, graph, "pagerank", backend, tracer=tracer)
            traces[backend] = [
                e.det for e in tracer.events if e.name == "superstep"
            ]
        assert traces["sim"] == traces["columnar"]


@needs_mp
class TestMultiprocessingBackend:
    @pytest.mark.parametrize("alg", ALGORITHMS)
    def test_parity_against_sim(self, programs, graph, alg):
        sim = run_on(programs, graph, alg, "sim", num_workers=2)
        mp = run_on(programs, graph, alg, "mp", num_workers=2)
        assert mp.metrics.backend == "mp"
        assert_parity(sim, mp)

    @pytest.mark.parametrize("workers", (1, 3))
    def test_worker_count_invariance(self, programs, graph, workers):
        base = run_on(programs, graph, "sssp", "sim", num_workers=4)
        mp = run_on(programs, graph, "sssp", "mp", num_workers=workers)
        assert_parity(base, mp, ignore_partition_keys=True)
        assert sum(mp.metrics.worker_sent) == sum(base.metrics.worker_sent)
        # and at equal worker counts the cross-worker traffic matches too
        same_w = run_on(programs, graph, "sssp", "mp", num_workers=4)
        assert_parity(base, same_w)

    def test_slab_overflow_falls_back_to_inline(self, programs, graph):
        sim = run_on(programs, graph, "pagerank", "sim", num_workers=2)
        # A segment too small for any slab: every exchange rides the pipe.
        mp = run_on(
            programs, graph, "pagerank", "mp", num_workers=2, mp_slab_bytes=64
        )
        assert_parity(sim, mp)

    @pytest.mark.parametrize(
        "opts",
        (
            {"ft": "FT"},
            {"use_combiners": True},
            {"track_makespan": True},
            {"partitioning": "range"},
        ),
        ids=("ft", "combiners", "makespan", "range"),
    )
    def test_unsupported_compositions_refuse_cleanly(self, programs, graph, opts):
        if opts.get("ft") == "FT":
            opts = {"ft": FaultTolerance(FaultPlan(checkpoint_every=2))}
        with pytest.raises(BackendUnsupported):
            run_on(programs, graph, "pagerank", "mp", num_workers=2, **opts)


class TestRegistry:
    def test_known_backends(self):
        assert BACKENDS == ("sim", "columnar", "mp")
        for name in ("sim", "columnar"):
            assert get_backend(name).name == name

    def test_instance_passthrough(self):
        backend = get_backend("columnar")
        assert get_backend(backend) is backend

    def test_unknown_name_is_a_value_error(self):
        with pytest.raises(ValueError, match="unknown backend"):
            get_backend("gpu")


class TestMessageCodec:
    def roundtrip(self, alg, messages):
        schema = compile_algorithm(alg).program.schema
        codec = MessageCodec(schema)
        by_tag = {}
        for msg in messages:
            by_tag.setdefault(msg[0], []).append(msg)
        for tag, msgs in by_tag.items():
            blob = b"".join(codec.pack[tag](m) for m in msgs)
            assert len(blob) == codec.sizes[tag] * len(msgs)
            assert codec.unpack[tag](blob, len(msgs)) == msgs
        return codec

    def test_pagerank_doubles(self):
        codec = self.roundtrip("pagerank", [(0, 0.125), (0, 1e-300)])
        assert codec.sizes[0] == 8  # untagged [Double]

    def test_sssp_int_with_inf_sentinel(self):
        codec = self.roundtrip("sssp", [(0, 7), (0, INF_VALUE), (0, 0)])
        assert codec.sizes[0] == 4  # untagged [Int], INF via sentinel
        # escalated double columns send exact ints back
        schema = compile_algorithm("sssp").program.schema
        c2 = MessageCodec(schema)
        assert c2.unpack[0](c2.pack[0]((0, 5.0)), 1) == [(0, 5)]

    def test_avg_teen_empty_payload(self):
        self.roundtrip("avg_teen_cnt", [(0,), (0,), (0,)])

    def test_tagged_records_lead_with_tag_byte(self):
        codec = self.roundtrip(
            "bipartite_matching", [(1, 3), (1, 9), (2, 4)]
        )
        assert all(size == 5 for size in codec.sizes.values())  # B + i


class TestCLI:
    ARGS = ["--scale", "0.05", "--arg", "e=1e-9", "--arg", "d=0.85",
            "--arg", "max_iter=3"]

    def gm(self, name):
        from repro.algorithms.sources import source_path

        return str(source_path(name))

    def test_backend_flag_runs_columnar(self, capsys):
        from repro.cli import main

        code = main(["run", self.gm("pagerank"), *self.ARGS,
                     "--backend", "columnar"])
        assert code == 0
        assert "backend=columnar" in capsys.readouterr().out

    def test_unknown_backend_is_exit_2(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit) as exc:
            main(["run", self.gm("pagerank"), *self.ARGS, "--backend", "gpu"])
        assert exc.value.code == 2

    @needs_mp
    def test_mp_refuses_checkpointing_as_usage_error(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit) as exc:
            main(["run", self.gm("pagerank"), *self.ARGS,
                  "--backend", "mp", "--checkpoint-every", "2"])
        assert exc.value.code == 2
        assert "does not support" in capsys.readouterr().err
