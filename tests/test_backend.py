"""Execution backends: cross-backend parity matrix + codec + mp smoke.

The contract under test: every backend is observationally identical on
``RunMetrics.parity_key()`` and on program outputs — the dict simulator
(the oracle), the columnar data plane, and the multiprocessing backend
may only differ in wall time, memory, and the ``metrics.backend`` label.
"""

from __future__ import annotations

import os

import pytest

from repro.bench.harness import default_args
from repro.compiler import compile_algorithm
from repro.graphgen.registry import load_graph
from repro.pregel.backend import BACKENDS, BackendUnsupported, get_backend
from repro.pregel.backend.codec import MessageCodec
from repro.pregel.backend.mp import mp_available
from repro.pregel.ft import CrashEvent, FaultPlan, FaultTolerance, RealFault
from repro.pregelir.ir import INF_VALUE

ALGORITHMS = (
    "avg_teen_cnt",
    "pagerank",
    "conductance",
    "sssp",
    "bipartite_matching",
    "bc_approx",
)

needs_mp = pytest.mark.skipif(
    not mp_available(),
    reason="needs fork start-method and multiprocessing.shared_memory",
)


@pytest.fixture(scope="module")
def graph():
    return load_graph("twitter", 0.15)


@pytest.fixture(scope="module")
def programs():
    return {alg: compile_algorithm(alg).program for alg in ALGORITHMS}


def run_on(programs, graph, alg, backend, **opts):
    program = programs[alg]
    return program.run(graph, default_args(alg, graph), backend=backend, **opts)


def assert_parity(oracle, other, *, ignore_partition_keys=False):
    key_a = oracle.metrics.parity_key()
    key_b = other.metrics.parity_key()
    if ignore_partition_keys:
        # Cross-worker-count comparison: the per-worker sent split and the
        # cross-worker traffic depend on the partitioning (identically so
        # on the simulator), so only the partition-independent keys and
        # the outputs must match.
        for key in ("worker_sent", "net_messages", "net_bytes"):
            key_a.pop(key)
            key_b.pop(key)
    assert key_a == key_b
    assert oracle.outputs == other.outputs
    assert oracle.result == other.result


class TestColumnarParityMatrix:
    """6 algorithms x {frontier, dense} x {sim, columnar}: bit-identical."""

    @pytest.mark.parametrize("alg", ALGORITHMS)
    @pytest.mark.parametrize("scheduling", ("frontier", "dense"))
    def test_matrix(self, programs, graph, alg, scheduling):
        sim = run_on(programs, graph, alg, "sim", scheduling=scheduling)
        col = run_on(programs, graph, alg, "columnar", scheduling=scheduling)
        assert sim.metrics.backend == "sim"
        assert col.metrics.backend == "columnar"
        assert_parity(sim, col)

    @pytest.mark.parametrize("alg", ("pagerank", "sssp"))
    def test_typed_columns_round_trip_outputs_as_lists(self, programs, graph, alg):
        col = run_on(programs, graph, alg, "columnar")
        for column in col.outputs.values():
            assert isinstance(column, list)

    def test_backend_outside_parity_key(self, programs, graph):
        run = run_on(programs, graph, "pagerank", "columnar")
        assert "backend" not in run.metrics.parity_key()
        assert "backend=columnar" in run.metrics.summary()


class TestColumnarFallbacks:
    """Robustness features keep working on columnar via tuple staging."""

    def test_ft_crash_recovery_parity(self, programs, graph):
        plan = FaultPlan(checkpoint_every=2, crashes=(CrashEvent(1, 3),))
        sim = run_on(programs, graph, "pagerank", "sim", ft=FaultTolerance(plan))
        plan = FaultPlan(checkpoint_every=2, crashes=(CrashEvent(1, 3),))
        col = run_on(programs, graph, "pagerank", "columnar", ft=FaultTolerance(plan))
        assert sim.metrics.faults_injected == col.metrics.faults_injected == 1
        assert_parity(sim, col)

    def test_combiners_parity(self, programs, graph):
        sim = run_on(programs, graph, "sssp", "sim", use_combiners=True)
        col = run_on(programs, graph, "sssp", "columnar", use_combiners=True)
        assert_parity(sim, col)

    def test_tracer_sees_same_superstep_stream(self, programs, graph):
        from repro.obs import Tracer

        traces = {}
        for backend in ("sim", "columnar"):
            tracer = Tracer()
            run_on(programs, graph, "pagerank", backend, tracer=tracer)
            traces[backend] = [
                e.det for e in tracer.events if e.name == "superstep"
            ]
        assert traces["sim"] == traces["columnar"]


@needs_mp
class TestMultiprocessingBackend:
    @pytest.mark.parametrize("alg", ALGORITHMS)
    def test_parity_against_sim(self, programs, graph, alg):
        sim = run_on(programs, graph, alg, "sim", num_workers=2)
        mp = run_on(programs, graph, alg, "mp", num_workers=2)
        assert mp.metrics.backend == "mp"
        assert_parity(sim, mp)

    @pytest.mark.parametrize("workers", (1, 3))
    def test_worker_count_invariance(self, programs, graph, workers):
        base = run_on(programs, graph, "sssp", "sim", num_workers=4)
        mp = run_on(programs, graph, "sssp", "mp", num_workers=workers)
        assert_parity(base, mp, ignore_partition_keys=True)
        assert sum(mp.metrics.worker_sent) == sum(base.metrics.worker_sent)
        # and at equal worker counts the cross-worker traffic matches too
        same_w = run_on(programs, graph, "sssp", "mp", num_workers=4)
        assert_parity(base, same_w)

    def test_slab_overflow_falls_back_to_inline(self, programs, graph):
        sim = run_on(programs, graph, "pagerank", "sim", num_workers=2)
        # A segment too small for any slab: every exchange rides the pipe.
        mp = run_on(
            programs, graph, "pagerank", "mp", num_workers=2, mp_slab_bytes=64
        )
        assert_parity(sim, mp)

    def test_unsupported_compositions_refuse_cleanly(self, programs, graph):
        # The engine refuses at construction, before the feature object is
        # ever touched, so a sentinel stands in for the real manager.
        # The simulated transport is the only refusal left: real pipes and
        # sockets carry the slabs (``--transport tcp`` for the latter).
        with pytest.raises(BackendUnsupported, match="does not support"):
            run_on(
                programs, graph, "pagerank", "mp", num_workers=2,
                transport=object(),
            )


class TestRegistry:
    def test_known_backends(self):
        assert BACKENDS == ("sim", "columnar", "mp")
        for name in ("sim", "columnar"):
            assert get_backend(name).name == name

    def test_instance_passthrough(self):
        backend = get_backend("columnar")
        assert get_backend(backend) is backend

    def test_unknown_name_is_a_value_error(self):
        with pytest.raises(ValueError, match="unknown backend"):
            get_backend("gpu")


class TestMessageCodec:
    def roundtrip(self, alg, messages):
        schema = compile_algorithm(alg).program.schema
        codec = MessageCodec(schema)
        by_tag = {}
        for msg in messages:
            by_tag.setdefault(msg[0], []).append(msg)
        for tag, msgs in by_tag.items():
            blob = b"".join(codec.pack[tag](m) for m in msgs)
            assert len(blob) == codec.sizes[tag] * len(msgs)
            assert codec.unpack[tag](blob, len(msgs)) == msgs
        return codec

    def test_pagerank_doubles(self):
        codec = self.roundtrip("pagerank", [(0, 0.125), (0, 1e-300)])
        assert codec.sizes[0] == 8  # untagged [Double]

    def test_sssp_int_with_inf_sentinel(self):
        codec = self.roundtrip("sssp", [(0, 7), (0, INF_VALUE), (0, 0)])
        assert codec.sizes[0] == 4  # untagged [Int], INF via sentinel
        # escalated double columns send exact ints back
        schema = compile_algorithm("sssp").program.schema
        c2 = MessageCodec(schema)
        assert c2.unpack[0](c2.pack[0]((0, 5.0)), 1) == [(0, 5)]

    def test_avg_teen_empty_payload(self):
        self.roundtrip("avg_teen_cnt", [(0,), (0,), (0,)])

    def test_tagged_records_lead_with_tag_byte(self):
        codec = self.roundtrip(
            "bipartite_matching", [(1, 3), (1, 9), (2, 4)]
        )
        assert all(size == 5 for size in codec.sizes.values())  # B + i


class TestCLI:
    ARGS = ["--scale", "0.05", "--arg", "e=1e-9", "--arg", "d=0.85",
            "--arg", "max_iter=3"]

    def gm(self, name):
        from repro.algorithms.sources import source_path

        return str(source_path(name))

    def test_backend_flag_runs_columnar(self, capsys):
        from repro.cli import main

        code = main(["run", self.gm("pagerank"), *self.ARGS,
                     "--backend", "columnar"])
        assert code == 0
        assert "backend=columnar" in capsys.readouterr().out

    def test_unknown_backend_is_exit_2(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit) as exc:
            main(["run", self.gm("pagerank"), *self.ARGS, "--backend", "gpu"])
        assert exc.value.code == 2

    @needs_mp
    def test_mp_runs_checkpointing(self, capsys):
        # Fault tolerance is a *lifted* composition: the flag pair that
        # used to refuse with exit 2 now runs to completion.
        from repro.cli import main

        code = main(["run", self.gm("pagerank"), *self.ARGS,
                     "--backend", "mp", "--checkpoint-every", "2"])
        assert code == 0
        assert "backend=mp" in capsys.readouterr().out

    @needs_mp
    def test_transport_flag_runs_tcp(self, capsys):
        from repro.cli import main

        code = main(["run", self.gm("pagerank"), *self.ARGS,
                     "--backend", "mp", "--transport", "tcp",
                     "--workers", "2"])
        assert code == 0
        assert "backend=mp" in capsys.readouterr().out

    @needs_mp
    def test_netsplit_over_tcp_recovers(self, capsys):
        from repro.cli import main

        code = main(["run", self.gm("pagerank"), *self.ARGS,
                     "--backend", "mp", "--transport", "tcp",
                     "--workers", "2", "--checkpoint-every", "2",
                     "--inject-fault", "netsplit:1@1",
                     "--exchange-deadline", "2.0"])
        assert code == 0
        assert "backend=mp" in capsys.readouterr().out

    def test_tcp_transport_needs_mp_backend(self, capsys):
        # Validated from the flags alone, before any graph work.
        from repro.cli import main

        with pytest.raises(SystemExit) as exc:
            main(["run", self.gm("pagerank"), *self.ARGS,
                  "--backend", "sim", "--transport", "tcp"])
        assert exc.value.code == 2
        assert "--backend mp" in capsys.readouterr().err

    def test_network_faults_need_tcp_transport(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit) as exc:
            main(["run", self.gm("pagerank"), *self.ARGS,
                  "--backend", "mp", "--checkpoint-every", "2",
                  "--inject-fault", "netsplit:1@1"])
        assert exc.value.code == 2
        assert "--transport tcp" in capsys.readouterr().err

    @needs_mp
    def test_partitioning_flag_runs_range(self, capsys):
        from repro.cli import main

        code = main(["run", self.gm("pagerank"), *self.ARGS,
                     "--backend", "mp", "--partitioning", "range",
                     "--workers", "2"])
        assert code == 0
        assert "backend=mp" in capsys.readouterr().out

    def test_mp_refuses_net_faults_as_usage_error(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit) as exc:
            main(["run", self.gm("pagerank"), *self.ARGS,
                  "--backend", "mp", "--net-faults", "drop=0.05"])
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "does not support the simulated transport" in err
        assert "--backend sim or columnar" in err

    def test_mp_refusal_fires_before_graph_load(self, capsys):
        # The composition is validated from the flags alone: a refused
        # pairing wins over a graph file that does not even exist, proving
        # no load was attempted first.
        from repro.cli import main

        with pytest.raises(SystemExit) as exc:
            main(["run", self.gm("pagerank"), *self.ARGS,
                  "--backend", "mp", "--net-faults", "drop=0.05",
                  "--graph-file", "/nonexistent/never.el"])
        assert exc.value.code == 2
        assert "does not support the simulated transport" in capsys.readouterr().err

    def test_mp_unavailable_is_usage_error(self, capsys, monkeypatch):
        import repro.pregel.backend.mp as mp_mod
        from repro.cli import main

        monkeypatch.setattr(mp_mod, "mp_available", lambda: False)
        with pytest.raises(SystemExit) as exc:
            main(["run", self.gm("pagerank"), *self.ARGS, "--backend", "mp"])
        assert exc.value.code == 2
        assert "unavailable on this platform" in capsys.readouterr().err


class TestRefusalMatrix:
    """Every (backend x feature) pair: the ``supports`` declaration, the
    construction-time refusal, and the CLI's pre-load validation must
    agree — a feature either runs or fails fast with one message."""

    FEATURES = (
        "ft", "net", "mem", "supervisor", "tracer", "combiners",
        "voting", "track_makespan", "range_partitioning",
    )

    def test_declarations_cover_every_feature(self):
        for name in BACKENDS:
            supports = get_backend(name).supports
            assert set(supports) == set(self.FEATURES), name

    def test_sim_and_columnar_refuse_nothing(self):
        for name in ("sim", "columnar"):
            assert all(get_backend(name).supports.values()), name

    def test_mp_declaration_matches_refusals(self):
        from repro.pregel.backend.mp import composition_refusals

        supports = get_backend("mp").supports
        sentinel = object()
        probes = {
            "ft": {"ft": sentinel},
            "net": {"transport": sentinel},
            "mem": {"mem": sentinel},
            "supervisor": {"supervisor": sentinel},
            "tracer": {"tracer": sentinel},
            "combiners": {"combiners": {0: sentinel}},
            "voting": {"use_voting": True},
            "track_makespan": {"track_makespan": True},
            "range_partitioning": {"partitioning": "range"},
        }
        for feature, kwargs in probes.items():
            refusals = composition_refusals(**kwargs)
            if supports[feature]:
                assert refusals == [], feature
            else:
                assert len(refusals) == 1, feature
                assert refusals[0].startswith("the mp backend does not support"), feature
                assert refusals[0].endswith("(run with --backend sim or columnar)"), feature

    def test_lifted_compositions_are_declared_supported(self):
        supports = get_backend("mp").supports
        assert supports["ft"] is True
        assert supports["combiners"] is True
        assert supports["tracer"] is True
        assert supports["voting"] is True
        assert supports["supervisor"] is True
        assert supports["mem"] is True
        assert supports["track_makespan"] is True
        assert supports["range_partitioning"] is True

    def test_only_simulated_transport_remains_refused(self):
        supports = get_backend("mp").supports
        refused = {name for name, ok in supports.items() if not ok}
        assert refused == {"net"}


@needs_mp
class TestLiftedCompositions:
    """The three compositions PR 6 refused, locked to sim parity."""

    @pytest.mark.parametrize("alg", ALGORITHMS)
    def test_combiners_parity(self, programs, graph, alg):
        sim = run_on(programs, graph, alg, "sim", use_combiners=True)
        mp = run_on(programs, graph, alg, "mp", use_combiners=True)
        assert_parity(sim, mp)

    @pytest.mark.parametrize("alg", ALGORITHMS)
    def test_ft_rollback_recovery_parity(self, programs, graph, alg):
        # The crash fires entering superstep 1 so even the shortest
        # algorithm (avg_teen_cnt halts after 2 supersteps) gets hit.
        def ft():
            return FaultTolerance(
                FaultPlan(checkpoint_every=2, crashes=(CrashEvent(1, 1),))
            )

        sim = run_on(programs, graph, alg, "sim", ft=ft())
        mp = run_on(programs, graph, alg, "mp", ft=ft())
        assert sim.metrics.faults_injected == mp.metrics.faults_injected == 1
        assert_parity(sim, mp)

    @pytest.mark.parametrize("alg", ("pagerank", "sssp"))
    def test_ft_confined_recovery_parity(self, programs, graph, alg):
        def ft():
            return FaultTolerance(
                FaultPlan(
                    checkpoint_every=2,
                    crashes=(CrashEvent(2, 3),),
                    recovery="confined",
                )
            )

        sim = run_on(programs, graph, alg, "sim", ft=ft())
        mp = run_on(programs, graph, alg, "mp", ft=ft())
        assert_parity(sim, mp)

    def test_recovered_run_matches_failure_free_outputs(self, programs, graph):
        clean = run_on(programs, graph, "pagerank", "sim")
        ft = FaultTolerance(
            FaultPlan(checkpoint_every=2, crashes=(CrashEvent(0, 4),))
        )
        recovered = run_on(programs, graph, "pagerank", "mp", ft=ft)
        assert recovered.outputs == clean.outputs

    @pytest.mark.parametrize("alg", ALGORITHMS)
    def test_deterministic_trace_byte_identity(self, programs, graph, alg):
        from repro.obs import Tracer, deterministic_jsonl

        streams = {}
        for backend in ("sim", "columnar", "mp"):
            tracer = Tracer()
            run_on(programs, graph, alg, backend, tracer=tracer)
            streams[backend] = deterministic_jsonl(tracer.events)
        assert streams["sim"] == streams["columnar"] == streams["mp"]

    def test_traced_ft_recovery_stream_matches_sim(self, programs, graph):
        from repro.obs import Tracer, deterministic_jsonl

        streams = {}
        for backend in ("sim", "mp"):
            tracer = Tracer()
            ft = FaultTolerance(
                FaultPlan(checkpoint_every=2, crashes=(CrashEvent(1, 3),))
            )
            run_on(programs, graph, "pagerank", backend, ft=ft, tracer=tracer)
            streams[backend] = deterministic_jsonl(tracer.events)
        assert streams["sim"] == streams["mp"]

    def test_combined_ft_and_combiners(self, programs, graph):
        def run(backend):
            ft = FaultTolerance(
                FaultPlan(checkpoint_every=2, crashes=(CrashEvent(0, 2),))
            )
            return run_on(
                programs, graph, "sssp", backend, ft=ft, use_combiners=True
            )

        assert_parity(run("sim"), run("mp"))


@needs_mp
class TestRealProcessFaults:
    """SIGKILL / hang real worker processes mid-run: the deadline-based
    exchange barrier must detect the failure, re-fork the worker from the
    latest checkpoint, finish bit-identical to the failure-free run, and
    leak nothing when recovery is impossible."""

    def ft(self, recovery="rollback"):
        return FaultTolerance(FaultPlan(checkpoint_every=2, recovery=recovery))

    @pytest.mark.parametrize("recovery", ("rollback", "confined"))
    @pytest.mark.parametrize("alg", ALGORITHMS)
    def test_sigkill_recovers_bit_identical(self, programs, graph, alg, recovery):
        # The kill fires entering superstep 1 so even the shortest
        # algorithm gets hit; detection is pipe-EOF, well inside the
        # deadline.
        sim = run_on(programs, graph, alg, "sim", num_workers=2)
        mp = run_on(
            programs, graph, alg, "mp", num_workers=2,
            ft=self.ft(recovery),
            real_faults=(RealFault("kill", 1, 1),),
            exchange_deadline=10.0,
        )
        assert mp.metrics.restarts == 1
        assert_parity(sim, mp)

    @pytest.mark.parametrize("recovery", ("rollback", "confined"))
    def test_hung_worker_never_deadlocks(self, programs, graph, recovery):
        # The worker wedges in its vertex phase (sleeps far past the
        # deadline); the parent must time the barrier out, declare it
        # dead, and recover — a blind pipe read would hang forever here.
        sim = run_on(programs, graph, "pagerank", "sim", num_workers=2)
        mp = run_on(
            programs, graph, "pagerank", "mp", num_workers=2,
            ft=self.ft(recovery),
            real_faults=(RealFault("hang", 0, 3),),
            exchange_deadline=0.75,
        )
        assert mp.metrics.restarts == 1
        assert_parity(sim, mp)

    def test_two_workers_killed_same_exchange_recover(self, programs, graph):
        # Both partitions vanish from one exchange barrier; each blamed
        # worker costs one restart from the budget and the run still
        # finishes bit-identical.
        sim = run_on(programs, graph, "pagerank", "sim", num_workers=3)
        mp = run_on(
            programs, graph, "pagerank", "mp", num_workers=3,
            ft=self.ft(),
            real_faults=(RealFault("kill", 1, 2), RealFault("kill", 2, 2)),
            exchange_deadline=10.0, max_restarts=3,
        )
        assert mp.metrics.restarts == 2
        assert_parity(sim, mp)

    def test_two_workers_killed_same_exchange_degrade_not_hang(self, programs, graph):
        # The second failure lands while the budget covers only one
        # restart: the run must degrade to a structured partial result,
        # never hang in the recovery barrier.
        mp = run_on(
            programs, graph, "pagerank", "mp", num_workers=3,
            ft=self.ft(),
            real_faults=(RealFault("kill", 1, 2), RealFault("kill", 2, 2)),
            exchange_deadline=10.0, max_restarts=1,
        )
        assert mp.metrics.halt_reason == "unrecoverable"

    def test_exhausted_restarts_degrade_without_leaks(self, programs, graph, tmp_path):
        from repro.pregel.backend.mp import _LIVE_SEGMENTS, _LIVE_SOCKETS
        from repro.pregel.mem import MemPlan, MemoryManager

        mem = MemoryManager(MemPlan(budget_bytes=1 << 30, spill_dir=str(tmp_path)))
        mem._spill_path("inbox", 0)  # force the private spill dir into existence
        shm = "/dev/shm"
        before = set(os.listdir(shm)) if os.path.isdir(shm) else set()
        mp = run_on(
            programs, graph, "pagerank", "mp", num_workers=2,
            ft=self.ft(), mem=mem,
            real_faults=(RealFault("kill", 1, 3),),
            max_restarts=0,
        )
        # Graceful degradation: a structured partial result, not an
        # exception and not a hang.
        assert mp.metrics.halt_reason == "unrecoverable"
        assert _LIVE_SEGMENTS == {}
        assert _LIVE_SOCKETS == {}
        if os.path.isdir(shm):
            leaked = {n for n in os.listdir(shm) if n.startswith("psm_")} - before
            assert leaked == set()
        # The abort runs the same teardown path as a clean exit, so the
        # run's private spill directory is gone too.
        assert list(tmp_path.iterdir()) == []

    def test_real_faults_require_fault_tolerance(self, programs, graph):
        with pytest.raises(ValueError, match="require fault tolerance"):
            run_on(
                programs, graph, "pagerank", "mp", num_workers=2,
                real_faults=(RealFault("kill", 1, 1),),
            )

    def test_exchange_deadline_must_be_positive(self, programs, graph):
        with pytest.raises(ValueError, match="exchange_deadline"):
            run_on(
                programs, graph, "pagerank", "mp", num_workers=2,
                exchange_deadline=0.0,
            )


@needs_mp
class TestTcpTransport:
    """Real TCP loopback slab exchange (``--transport tcp``): the framed
    protocol reuses the ``repro.pregel.net`` sequencing discipline against
    real kernel buffers, so every run must be bit-identical to shm and
    sim — failure-free, under real network faults with recovery, and with
    zero leaked sockets on every exit path."""

    def ft(self, recovery="rollback"):
        return FaultTolerance(FaultPlan(checkpoint_every=2, recovery=recovery))

    @pytest.mark.parametrize("alg", ALGORITHMS)
    @pytest.mark.parametrize("scheduling", ("frontier", "dense"))
    def test_parity_matrix(self, programs, graph, alg, scheduling):
        # 6 algorithms x {frontier, dense} x {shm, tcp}: the transport is
        # observationally invisible.
        sim = run_on(
            programs, graph, alg, "sim", num_workers=2,
            scheduling=scheduling,
        )
        shm = run_on(
            programs, graph, alg, "mp", num_workers=2,
            scheduling=scheduling,
        )
        tcp = run_on(
            programs, graph, alg, "mp", num_workers=2,
            scheduling=scheduling, transport_mode="tcp",
        )
        assert_parity(sim, shm)
        assert_parity(sim, tcp)

    def test_tcp_metrics_families_flow(self, programs, graph):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        run_on(
            programs, graph, "pagerank", "mp", num_workers=2,
            transport_mode="tcp", metrics_registry=registry,
        )
        snap = registry.snapshot()

        def value(name):
            return sum(s["value"] for s in snap[name]["series"])

        # Exactly-once on a healthy link: every frame sent is received
        # and acked exactly once, byte counts agree end to end.
        assert value("tcp.frames_sent") > 0
        assert value("tcp.frames_received") == value("tcp.frames_sent")
        assert value("tcp.acks_received") == value("tcp.frames_sent")
        assert value("tcp.bytes_received") == value("tcp.bytes_sent")
        assert value("tcp.connects") > 0

    @pytest.mark.parametrize("recovery", ("rollback", "confined"))
    @pytest.mark.parametrize("kind,superstep", [
        ("kill", 1), ("netsplit", 2), ("slowlink", 1),
    ])
    def test_network_faults_recover_bit_identical(
        self, programs, graph, kind, superstep, recovery
    ):
        # netsplit closes the victim's listening socket mid-exchange
        # (peers see a real ECONNREFUSED); slowlink throttles it past the
        # deadline (peers time out).  Either way the blame fold must
        # identify the victim, recovery must replay it, and the run must
        # end bit-identical to the failure-free tcp run.
        base = run_on(
            programs, graph, "pagerank", "mp", num_workers=2,
            transport_mode="tcp",
        )
        mp = run_on(
            programs, graph, "pagerank", "mp", num_workers=2,
            ft=self.ft(recovery),
            real_faults=(RealFault(kind, 1, superstep),),
            transport_mode="tcp", exchange_deadline=3.0,
        )
        assert mp.metrics.restarts == 1
        assert_parity(base, mp)

    def test_netsplit_classified_as_refused(self, programs, graph):
        # Connection-level evidence is conclusive: the peers' ECONNREFUSED
        # reports, not the parent's barrier timeout, name the cause.
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        run = run_on(
            programs, graph, "pagerank", "mp", num_workers=2,
            ft=self.ft(),
            real_faults=(RealFault("netsplit", 1, 2),),
            transport_mode="tcp", exchange_deadline=3.0,
            metrics_registry=registry,
        )
        assert run.metrics.restarts == 1
        snap = registry.snapshot()
        misses = snap["mp.exchange_deadline_misses"]["series"]
        assert [(row["labels"], row["value"]) for row in misses] == [
            ({"cause": "refused"}, 1)
        ]
        causes = {
            row["labels"]["cause"]
            for row in snap["tcp.peer_failures"]["series"]
        }
        assert "refused" in causes

    @pytest.mark.parametrize("superstep", (0, 11), ids=("first", "final"))
    def test_fault_at_run_boundaries(self, programs, graph, superstep):
        # Edge supersteps for pagerank's 12-superstep run: a fault in the
        # very first exchange recovers from the forced initial checkpoint;
        # one in the last exchange replays only the tail.
        base = run_on(
            programs, graph, "pagerank", "mp", num_workers=2,
            transport_mode="tcp",
        )
        mp = run_on(
            programs, graph, "pagerank", "mp", num_workers=2,
            ft=self.ft(),
            real_faults=(RealFault("netsplit", 1, superstep),),
            transport_mode="tcp", exchange_deadline=3.0,
        )
        assert mp.metrics.restarts == 1
        assert_parity(base, mp)

    def test_two_workers_killed_same_exchange_over_tcp(self, programs, graph):
        sim = run_on(programs, graph, "pagerank", "sim", num_workers=3)
        mp = run_on(
            programs, graph, "pagerank", "mp", num_workers=3,
            ft=self.ft(),
            real_faults=(RealFault("kill", 1, 2), RealFault("kill", 2, 2)),
            transport_mode="tcp", exchange_deadline=3.0, max_restarts=3,
        )
        assert mp.metrics.restarts == 2
        assert_parity(sim, mp)

    def test_unrecoverable_tcp_degrades_without_leaks(self, programs, graph, tmp_path):
        from repro.pregel.backend.mp import _LIVE_SEGMENTS, _LIVE_SOCKETS
        from repro.pregel.mem import MemPlan, MemoryManager

        mem = MemoryManager(MemPlan(budget_bytes=1 << 30, spill_dir=str(tmp_path)))
        mem._spill_path("inbox", 0)
        shm = "/dev/shm"
        before = set(os.listdir(shm)) if os.path.isdir(shm) else set()
        mp = run_on(
            programs, graph, "pagerank", "mp", num_workers=2,
            ft=self.ft(), mem=mem,
            real_faults=(RealFault("netsplit", 1, 2),),
            transport_mode="tcp", exchange_deadline=3.0, max_restarts=0,
        )
        # Structured degradation with nothing left behind: no bound
        # sockets, no shm segments, no spill files.
        assert mp.metrics.halt_reason == "unrecoverable"
        assert _LIVE_SOCKETS == {}
        assert _LIVE_SEGMENTS == {}
        if os.path.isdir(shm):
            leaked = {n for n in os.listdir(shm) if n.startswith("psm_")} - before
            assert leaked == set()
        assert list(tmp_path.iterdir()) == []

    def test_network_faults_require_tcp_transport(self, programs, graph):
        with pytest.raises(ValueError, match="--transport tcp"):
            run_on(
                programs, graph, "pagerank", "mp", num_workers=2,
                ft=self.ft(),
                real_faults=(RealFault("netsplit", 1, 1),),
            )

    def test_unknown_transport_mode_raises(self, programs, graph):
        with pytest.raises(ValueError, match="unknown transport"):
            run_on(
                programs, graph, "pagerank", "mp", num_workers=2,
                transport_mode="udp",
            )


@needs_mp
class TestRangePartitioning:
    """Contiguous vid blocks per worker (``--partitioning range``), lifted
    from the refusal matrix: bit-identical to the simulator's range
    placement at equal worker counts."""

    @pytest.mark.parametrize("alg", ALGORITHMS)
    def test_parity_against_sim_range(self, programs, graph, alg):
        sim = run_on(
            programs, graph, alg, "sim", num_workers=3, partitioning="range",
        )
        mp = run_on(
            programs, graph, alg, "mp", num_workers=3, partitioning="range",
        )
        assert_parity(sim, mp)

    def test_range_and_tcp_compose(self, programs, graph):
        sim = run_on(
            programs, graph, "pagerank", "sim", num_workers=2,
            partitioning="range",
        )
        mp = run_on(
            programs, graph, "pagerank", "mp", num_workers=2,
            partitioning="range", transport_mode="tcp",
        )
        assert_parity(sim, mp)

    def test_outputs_match_hash_partitioning(self, programs, graph):
        # Partitioning moves vertices between workers, so the per-worker
        # split differs — but the partition-independent keys and outputs
        # must not.
        hashed = run_on(programs, graph, "pagerank", "mp", num_workers=2)
        ranged = run_on(
            programs, graph, "pagerank", "mp", num_workers=2,
            partitioning="range",
        )
        assert_parity(hashed, ranged, ignore_partition_keys=True)

    def test_unknown_partitioning_raises(self, programs, graph):
        with pytest.raises(ValueError, match="partitioning"):
            run_on(
                programs, graph, "pagerank", "mp", num_workers=2,
                partitioning="diagonal",
            )


@needs_mp
class TestSupervisedMP:
    """Real liveness supervision: scripted silent deaths become actual
    SIGKILLs that only the deadline barrier's liveness pings reveal."""

    def test_silent_crash_detected_restarted_and_parity(self, programs, graph):
        from repro.pregel.supervisor import Supervisor, SupervisorPlan

        sim = run_on(programs, graph, "pagerank", "sim", num_workers=2)
        supervisor = Supervisor(
            SupervisorPlan(silent_crashes=(CrashEvent(1, 3),))
        )
        mp = run_on(
            programs, graph, "pagerank", "mp", num_workers=2,
            ft=FaultTolerance(FaultPlan(checkpoint_every=2, recovery="confined")),
            supervisor=supervisor,
        )
        assert_parity(sim, mp)
        report = supervisor.report()
        assert report["restarts_used"] == 1
        (detection,) = report["detections"]
        assert detection["worker"] == 1
        assert detection["action"] == "restarted"
        assert detection["cause"] == "died"

    def test_restart_budget_exhaustion_degrades(self, programs, graph):
        from repro.pregel.supervisor import Supervisor, SupervisorPlan

        supervisor = Supervisor(
            SupervisorPlan(silent_crashes=(CrashEvent(1, 3),), max_restarts=0)
        )
        mp = run_on(
            programs, graph, "pagerank", "mp", num_workers=2,
            ft=FaultTolerance(FaultPlan(checkpoint_every=2)),
            supervisor=supervisor,
        )
        assert mp.metrics.halt_reason == "unrecoverable"
        assert supervisor.report()["degraded"]


@needs_mp
class TestVotingOnMP:
    """vote_to_halt lifted: per-worker bitsets folded at the barrier are
    bit-identical to the simulator's single authoritative bitset."""

    @pytest.mark.parametrize("alg", ("pagerank", "sssp"))
    def test_generated_programs_run_under_voting(self, programs, graph, alg):
        # Generated programs never vote (§5.2) — the voting plumbing must
        # be parity-invisible when enabled but unused.
        sim = run_on(programs, graph, alg, "sim", use_voting=True)
        mp = run_on(programs, graph, alg, "mp", use_voting=True)
        assert_parity(sim, mp)

    def test_custom_voting_program_halts_identically(self, programs, graph):
        from repro.pregel.backend.mp import MPEngine
        from repro.pregel.runtime import PregelEngine

        # no-inbox vertices flood their neighbours then vote; awakened
        # vertices just vote again — all_halted at superstep 2, driven
        # entirely by the folded vote bitsets.
        def vertex(ctx, vid, messages):
            if not messages:
                for nbr in graph.out_nbrs(vid):
                    ctx.send(nbr, (0, float(vid)))
            ctx.vote_to_halt(vid)

        schema = programs["pagerank"].schema
        sim = PregelEngine(
            graph, vertex, num_workers=2, use_voting=True,
            message_size=lambda m: 8,
        ).run()
        mp = MPEngine(
            graph, schema=schema, vertex_compute=vertex,
            num_workers=2, use_voting=True,
        )
        mp.run()
        assert sim.halt_reason == mp.metrics.halt_reason == "all_halted"
        assert sim.parity_key() == mp.metrics.parity_key()

    def test_vote_without_voting_enabled_raises(self, programs, graph):
        from repro.pregel.backend.mp import MPEngine

        def vertex(ctx, vid, messages):
            ctx.vote_to_halt(vid)

        mp = MPEngine(
            graph, schema=programs["pagerank"].schema,
            vertex_compute=vertex, num_workers=2,
        )
        with pytest.raises(RuntimeError, match="use_voting=True"):
            mp.run()


@needs_mp
class TestMemOnMP:
    """Memory budgets lifted: per-process byte accounting rides the
    exchange reply; the parent enforces the plan."""

    def test_generous_budget_is_parity_invisible(self, programs, graph):
        from repro.pregel.mem import MemPlan, MemoryManager

        sim = run_on(programs, graph, "pagerank", "sim", num_workers=2)
        mem = MemoryManager(MemPlan(budget_bytes=1 << 30))
        mp = run_on(programs, graph, "pagerank", "mp", num_workers=2, mem=mem)
        assert_parity(sim, mp)
        report = mem.report()
        assert len(report.peak_bytes) == 2
        assert all(peak > 0 for peak in report.peak_bytes)
        assert mp.metrics.mem_peak_bytes == max(report.peak_bytes)

    def test_overflow_degrades_to_structured_oom(self, programs, graph):
        from repro.pregel.mem import MemPlan, MemoryManager

        mem = MemoryManager(MemPlan(budget_bytes=2048))
        mp = run_on(programs, graph, "pagerank", "mp", num_workers=2, mem=mem)
        assert mp.metrics.halt_reason == "out_of_memory"
        report = mem.report()
        assert report.oom is not None
        assert report.oom["phase"] == "exchange"
        assert report.oom["needed_bytes"] > report.oom["budget_bytes"] == 2048


@needs_mp
class TestMakespanOnMP:
    def test_makespan_accounting_matches_sim(self, programs, graph):
        sim = run_on(
            programs, graph, "pagerank", "sim",
            scheduling="dense", track_makespan=True,
        )
        mp = run_on(
            programs, graph, "pagerank", "mp",
            scheduling="dense", track_makespan=True,
        )
        assert sim.metrics.makespan_units == mp.metrics.makespan_units > 0
        assert sim.metrics.ideal_units == mp.metrics.ideal_units > 0
        assert_parity(sim, mp)


class TestSlabSizing:
    def test_clamp_applies_absolute_ceiling(self):
        from repro.pregel.backend.mp import _SLAB_CEILING, clamp_slab_bytes

        assert clamp_slab_bytes(10 * _SLAB_CEILING) == _SLAB_CEILING
        assert clamp_slab_bytes(4 << 20) == 4 << 20

    def test_clamp_keeps_one_mib_floor(self):
        from repro.pregel.backend.mp import clamp_slab_bytes

        assert clamp_slab_bytes(17) == 1 << 20

    def test_clamp_respects_mem_plan_budget(self):
        from repro.pregel.backend.mp import clamp_slab_bytes
        from repro.pregel.mem import MemPlan

        plan = MemPlan(budget_bytes=8 << 20)
        assert clamp_slab_bytes(1 << 30, plan) == 8 << 20
        targeted = MemPlan(worker_budgets=((1, 2 << 20),))
        assert clamp_slab_bytes(1 << 30, targeted) == 2 << 20
        unlimited = MemPlan()
        assert clamp_slab_bytes(32 << 20, unlimited) == 32 << 20

    @needs_mp
    def test_tiny_slab_still_parity_identical(self, programs, graph):
        # Overflow spills through the inline pipe path: capacity is a
        # performance knob, never a correctness one.
        sim = run_on(programs, graph, "sssp", "sim", num_workers=2)
        mp = run_on(
            programs, graph, "sssp", "mp", num_workers=2,
            mp_slab_bytes=1 << 20,
        )
        assert_parity(sim, mp)


class TestVectorizedReceivers:
    """The columnar bulk-receive handlers: installed exactly where the
    vectorizer proves the receive loop is a pure column reduction, and
    parity-invisible wherever they run (the matrix above runs them)."""

    def handlers(self, programs, graph, alg):
        program = programs[alg]
        engine, _fields, _master = program.make_engine(
            graph, default_args(alg, graph), backend="columnar"
        )
        return engine._bulk_receivers

    def test_reduction_phases_vectorize(self, programs, graph):
        for alg in ("pagerank", "avg_teen_cnt", "conductance", "bc_approx"):
            assert self.handlers(programs, graph, alg), alg

    def test_dependent_or_stateful_phases_do_not(self, programs, graph):
        # sssp's receive couples two fields across statements; bipartite
        # matching assigns fields and writes globals from receive loops.
        for alg in ("sssp", "bipartite_matching"):
            assert self.handlers(programs, graph, alg) == {}, alg

    def test_handlers_only_engage_on_slab_fast_path(self, programs, graph):
        program = programs["pagerank"]
        engine, _fields, _master = program.make_engine(
            graph,
            default_args("pagerank", graph),
            backend="columnar",
            ft=FaultTolerance(FaultPlan(checkpoint_every=2)),
        )
        # Fallback staging (here: fault tolerance) keeps scalar semantics.
        assert engine._bulk_receivers == {}
