"""Pretty-printer and AST-utility tests, including a hypothesis round-trip
over randomly generated expressions (parse(pretty(e)) == e structurally)."""

import random

from hypothesis import given, settings, strategies as st

from repro.lang import ast, parse_procedure, pretty
from repro.lang.ast import (
    Binary,
    BinOp,
    BoolLit,
    Cast,
    FloatLit,
    Ident,
    IntLit,
    IterKind,
    PropAccess,
    Ternary,
    Unary,
    UnOp,
    flip_iter_kind,
    land,
    map_expr,
    walk,
)
from repro.lang import types as ty


class TestPrecedencePrinting:
    def roundtrip(self, expr_text: str) -> str:
        proc = parse_procedure(
            f"Procedure p(G: Graph): Double {{ Return {expr_text}; }}"
        )
        return pretty(proc.body.stmts[0].expr)

    def test_redundant_parens_dropped(self):
        assert self.roundtrip("((1 + 2)) + 3") == "1 + 2 + 3"

    def test_needed_parens_kept(self):
        assert self.roundtrip("(1 + 2) * 3") == "(1 + 2) * 3"

    def test_right_associative_sub(self):
        # 1 - (2 - 3) must keep its parens; (1 - 2) - 3 must not
        assert self.roundtrip("1 - (2 - 3)") == "1 - (2 - 3)"
        assert self.roundtrip("(1 - 2) - 3") == "1 - 2 - 3"

    def test_and_inside_or(self):
        assert self.roundtrip("True && False || True") == "True && False || True"
        assert self.roundtrip("True && (False || True)") == "True && (False || True)"

    def test_ternary_in_operand_position(self):
        out = self.roundtrip("(True ? 1 : 2) + 3")
        assert out == "(True ? 1 : 2) + 3"

    def test_unary_minus_of_sum(self):
        assert self.roundtrip("-(1 + 2)") == "-(1 + 2)"

    def test_abs_never_needs_parens(self):
        assert self.roundtrip("|1 - 2| * 3") == "|1 - 2| * 3"

    def test_cast_binds_tighter_than_mul(self):
        assert self.roundtrip("(Double) 1 * 2") == "(Double) 1 * 2"


def _expr_strategy():
    leaf = st.one_of(
        st.integers(min_value=0, max_value=99).map(IntLit),
        st.just(BoolLit(True)),
        st.just(BoolLit(False)),
    )

    def extend(children):
        numeric_op = st.sampled_from(
            [BinOp.ADD, BinOp.SUB, BinOp.MUL]
        )
        return st.one_of(
            st.tuples(numeric_op, children, children).map(
                lambda t: Binary(t[0], t[1], t[2])
            ),
            children.map(lambda e: Unary(UnOp.NEG, e)),
            st.tuples(children, children, children).map(
                lambda t: Ternary(Binary(BinOp.LT, t[0], t[1]), t[1], t[2])
            ),
        )

    return st.recursive(leaf, extend, max_leaves=12)


class TestRoundTripProperty:
    @given(_expr_strategy())
    @settings(max_examples=120, deadline=None)
    def test_pretty_parse_pretty_is_stable(self, expr):
        text = pretty(expr)
        proc = parse_procedure(
            f"Procedure p(G: Graph) {{ Int z = {text}; }}"
        )
        reparsed = proc.body.stmts[0].init
        assert pretty(reparsed) == text


class TestAstUtilities:
    def test_walk_visits_all_nodes(self):
        proc = parse_procedure(
            "Procedure p(G: Graph) { If (True) { Int a = 1 + 2; } }"
        )
        kinds = {type(n).__name__ for n in walk(proc.body)}
        assert {"Block", "If", "VarDecl", "Binary", "IntLit", "BoolLit"} <= kinds

    def test_map_expr_rewrites_leaves(self):
        expr = Binary(BinOp.ADD, Ident("x"), Binary(BinOp.MUL, Ident("x"), IntLit(2)))

        def bump(e):
            if isinstance(e, Ident):
                return IntLit(5)
            return e

        out = map_expr(expr, bump)
        assert pretty(out) == "5 + 5 * 2"

    def test_land_single(self):
        e = Ident("a")
        assert land(e) is e

    def test_land_multiple(self):
        out = land(Ident("a"), Ident("b"), Ident("c"))
        assert pretty(out) == "a && b && c"

    def test_flip_iter_kind(self):
        assert flip_iter_kind(IterKind.NBRS) is IterKind.IN_NBRS
        assert flip_iter_kind(IterKind.IN_NBRS) is IterKind.NBRS
        assert flip_iter_kind(IterKind.UP_NBRS) is IterKind.DOWN_NBRS
        assert flip_iter_kind(IterKind.DOWN_NBRS) is IterKind.UP_NBRS

    def test_stmt_exprs_and_sub_blocks(self):
        proc = parse_procedure(
            "Procedure p(G: Graph) { While (True) { Int a = 1; } }"
        )
        loop = proc.body.stmts[0]
        assert len(ast.stmt_exprs(loop)) == 1
        assert len(ast.sub_blocks(loop)) == 1


class TestTypes:
    def test_join_numeric_widening(self):
        assert ty.join_numeric(ty.INT, ty.DOUBLE) == ty.DOUBLE
        assert ty.join_numeric(ty.FLOAT, ty.LONG) == ty.FLOAT
        assert ty.join_numeric(ty.INT, ty.BOOL) is None

    def test_assignable(self):
        assert ty.assignable(ty.DOUBLE, ty.INT)
        assert ty.assignable(ty.INT, ty.DOUBLE)  # narrowing allowed (GM-style)
        assert not ty.assignable(ty.INT, ty.NODE)
        assert ty.assignable(ty.NODE, ty.NODE)

    def test_comparable(self):
        assert ty.comparable(ty.NODE, ty.NODE)
        assert ty.comparable(ty.INT, ty.DOUBLE)
        assert not ty.comparable(ty.NODE, ty.INT)

    def test_defaults(self):
        assert ty.default_value(ty.INT) == 0
        assert ty.default_value(ty.DOUBLE) == 0.0
        assert ty.default_value(ty.BOOL) is False
        assert ty.default_value(ty.NODE) == ty.NIL == -1

    def test_type_spelling(self):
        assert str(ty.NodePropType(ty.INT)) == "N_P<Int>"
        assert str(ty.EdgePropType(ty.DOUBLE)) == "E_P<Double>"


class TestSymbols:
    def test_scope_lookup_walks_outward(self):
        from repro.lang.symbols import Scope, Symbol, SymbolKind

        outer = Scope()
        outer.define(Symbol("x", ty.INT, SymbolKind.LOCAL))
        inner = outer.child()
        assert inner.lookup("x") is not None
        assert inner.lookup("y") is None
        assert not inner.defined_here("x")

    def test_shadowing(self):
        from repro.lang.symbols import Scope, Symbol, SymbolKind

        outer = Scope()
        outer.define(Symbol("x", ty.INT, SymbolKind.LOCAL))
        inner = outer.child()
        shadow = Symbol("x", ty.DOUBLE, SymbolKind.LOCAL)
        inner.define(shadow)
        assert inner.lookup("x") is shadow
        assert outer.lookup("x") is not shadow

    def test_symbol_predicates(self):
        from repro.lang.symbols import Symbol, SymbolKind

        prop = Symbol("p", ty.NodePropType(ty.INT), SymbolKind.PROPERTY)
        it = Symbol("n", ty.NODE, SymbolKind.ITERATOR)
        local = Symbol("s", ty.INT, SymbolKind.LOCAL)
        assert prop.is_property() and not prop.is_scalar()
        assert it.is_iterator()
        assert local.is_scalar()
