"""Message-combiner extension: inference, engine folding, and equivalence."""

import pytest

from repro.compiler import compile_algorithm
from repro.graphgen import attach_standard_props, uniform_random
from repro.pregel import Graph, PregelEngine
from repro.pregel.globalmap import GlobalOp
from repro.translate.combiner import combiner_functions, infer_combiners


@pytest.fixture(scope="module")
def graph():
    g = uniform_random(60, 300, seed=21)
    attach_standard_props(g, seed=22)
    return g


class TestInference:
    def test_pagerank_sum_tag_combinable(self):
        compiled = compile_algorithm("pagerank", emit_java=False)
        combiners = infer_combiners(compiled.ir)
        assert list(combiners.values()) == [GlobalOp.SUM]

    def test_sssp_rejected_multi_statement_receive(self):
        compiled = compile_algorithm("sssp", emit_java=False)
        assert infer_combiners(compiled.ir) == {}

    def test_bipartite_overwrite_rejected(self):
        compiled = compile_algorithm("bipartite_matching", emit_java=False)
        assert infer_combiners(compiled.ir) == {}

    def test_cc_min_tags_combinable(self):
        compiled = compile_algorithm("connected_components", emit_java=False)
        combiners = infer_combiners(compiled.ir)
        assert GlobalOp.MIN in combiners.values()
        # the id-broadcast tag (list building) must not be combinable
        assert len(combiners) < len(compiled.ir.messages)

    def test_avg_teen_rejected_empty_payload(self):
        # empty payload: message *count* is the datum; combining would lose it
        compiled = compile_algorithm("avg_teen_cnt", emit_java=False)
        assert infer_combiners(compiled.ir) == {}


class TestEngineFolding:
    def test_combined_sends_are_folded(self):
        g = Graph.from_edges(3, [(0, 2), (1, 2)])
        fns = combiner_functions({0: GlobalOp.SUM})
        got = []

        def vertex(ctx, vid, messages):
            if ctx.superstep == 0 and vid < 2:
                ctx.send(2, (0, vid + 1))
            got.extend(messages)

        def master(ctx):
            if ctx.superstep == 2:
                ctx.halt()

        metrics = PregelEngine(g, vertex, master, combiners=fns, num_workers=1).run()
        assert got == [(0, 3)]  # 1 + 2 folded at the sender
        assert metrics.messages == 1

    def test_per_worker_slots(self):
        # senders on different workers cannot share a combiner slot
        g = Graph.from_edges(3, [(0, 2), (1, 2)])
        fns = combiner_functions({0: GlobalOp.SUM})
        got = []

        def vertex(ctx, vid, messages):
            if ctx.superstep == 0 and vid < 2:
                ctx.send(2, (0, vid + 1))
            got.extend(messages)

        def master(ctx):
            if ctx.superstep == 2:
                ctx.halt()

        metrics = PregelEngine(g, vertex, master, combiners=fns, num_workers=2).run()
        assert sorted(m[1] for m in got) == [1, 2]
        assert metrics.messages == 2

    def test_uncombined_tags_flow_normally(self):
        g = Graph.from_edges(2, [(0, 1)])
        fns = combiner_functions({5: GlobalOp.SUM})
        got = []

        def vertex(ctx, vid, messages):
            if ctx.superstep == 0 and vid == 0:
                ctx.send(1, (0, 10))
                ctx.send(1, (0, 20))
            got.extend(messages)

        def master(ctx):
            if ctx.superstep == 2:
                ctx.halt()

        PregelEngine(g, vertex, master, combiners=fns).run()
        assert got == [(0, 10), (0, 20)]


class TestMetering:
    def test_width_changing_combiner_meters_folded_payload(self):
        # regression: bytes used to be metered on the *first* send into a
        # slot; a fold that widens the payload must be metered at flush on
        # the message that actually travels
        g = Graph.from_edges(3, [(0, 2), (1, 2)])

        def concat(a, b):
            return a + b[1:]

        def vertex(ctx, vid, messages):
            if ctx.superstep == 0 and vid < 2:
                ctx.send(2, (0, vid))

        def master(ctx):
            if ctx.superstep == 2:
                ctx.halt()

        metrics = PregelEngine(
            g, vertex, master, combiners={0: concat}, num_workers=1
        ).run()
        assert metrics.messages == 1
        # default sizing is 1 tag byte + 8 per payload field: the folded
        # (0, 0, 1) is 17 bytes, not the 9 of the first send
        assert metrics.message_bytes == 17

    def test_worker_sent_counts_folded_sends(self):
        # both sends cost the sending worker even though they fold into one
        # delivered message; messages/net_messages stay flush-side
        g = Graph.from_edges(4, [(0, 3), (2, 3)])
        fns = combiner_functions({0: GlobalOp.SUM})

        def vertex(ctx, vid, messages):
            # with 2 workers, vertices 0 and 2 share worker 0; dst 3 is on
            # worker 1, so the folded flush is one cross-worker message
            if ctx.superstep == 0 and vid in (0, 2):
                ctx.send(3, (0, 1))

        def master(ctx):
            if ctx.superstep == 2:
                ctx.halt()

        metrics = PregelEngine(g, vertex, master, combiners=fns, num_workers=2).run()
        assert metrics.worker_sent == [2, 0]
        assert metrics.messages == 1
        assert metrics.net_messages == 1
        assert metrics.load_imbalance() == 2.0


class TestEndToEnd:
    def test_pagerank_same_results_fewer_messages(self, graph):
        compiled = compile_algorithm("pagerank", emit_java=False)
        args = {"e": 1e-10, "d": 0.85, "max_iter": 8}
        plain = compiled.program.run(graph, args)
        combined = compiled.program.run(graph, args, use_combiners=True, num_workers=4)
        # combining changes float summation order: equal up to rounding
        for a, b in zip(plain.outputs["pg_rank"], combined.outputs["pg_rank"]):
            assert abs(a - b) < 1e-12
        assert combined.metrics.messages < plain.metrics.messages

    def test_cc_same_results_with_combining(self, graph):
        compiled = compile_algorithm("connected_components", emit_java=False)
        plain = compiled.program.run(graph)
        combined = compiled.program.run(graph, use_combiners=True)
        assert plain.outputs["comp"] == combined.outputs["comp"]

    def test_combining_respects_worker_count(self, graph):
        compiled = compile_algorithm("pagerank", emit_java=False)
        args = {"e": 1e-10, "d": 0.85, "max_iter": 6}
        few = compiled.program.run(graph, args, use_combiners=True, num_workers=2)
        many = compiled.program.run(graph, args, use_combiners=True, num_workers=16)
        # more workers -> fewer sharing opportunities -> more messages
        assert few.metrics.messages <= many.metrics.messages
        for a, b in zip(few.outputs["pg_rank"], many.outputs["pg_rank"]):
            assert abs(a - b) < 1e-12
