"""Three-way equivalence — the pipeline's end-to-end soundness claim:

    textbook reference  ==  interpret(green-marl)  ==  run(compile(green-marl))

for every bundled algorithm, over fixed and hypothesis-generated graphs."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms import reference
from repro.algorithms.sources import load_procedure, load_source
from repro.compiler import compile_algorithm
from repro.graphgen import attach_standard_props, bipartite, uniform_random
from repro.interp import interpret
from repro.pregel import Graph

TOL = 1e-9


def _compiled(name):
    return compile_algorithm(name, emit_java=False)


def close_lists(a, b, tol=TOL):
    assert len(a) == len(b)
    for x, y in zip(a, b):
        if x == y:
            continue
        assert abs(x - y) <= tol * max(1.0, abs(x), abs(y)), (x, y)


def make_graph(n, m, seed):
    g = uniform_random(n, m, seed=seed)
    attach_standard_props(g, seed=seed + 1)
    return g


class TestAvgTeen:
    def check(self, graph):
        args = {"K": 30}
        ref_cnt, ref_avg = reference.avg_teen_cnt(graph, graph.node_props["age"], 30)
        interp = interpret(load_source("avg_teen_cnt"), graph, args)
        run = _compiled("avg_teen_cnt").program.run(graph, args)
        assert interp.outputs["teen_cnt"] == ref_cnt
        assert run.outputs["teen_cnt"] == ref_cnt
        assert abs(interp.result - ref_avg) <= TOL
        assert abs(run.result - ref_avg) <= TOL

    def test_small(self, small_graph):
        self.check(small_graph)

    def test_skewed(self, skewed_graph):
        self.check(skewed_graph)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15, deadline=None)
    def test_random_graphs(self, seed):
        self.check(make_graph(25, 80, seed))


class TestPageRank:
    ARGS = {"e": 1e-10, "d": 0.85, "max_iter": 12}

    def check(self, graph):
        ref_pr, _ = reference.pagerank(graph, 1e-10, 0.85, 12)
        interp = interpret(load_source("pagerank"), graph, self.ARGS)
        run = _compiled("pagerank").program.run(graph, self.ARGS)
        close_lists(interp.outputs["pg_rank"], ref_pr)
        close_lists(run.outputs["pg_rank"], ref_pr)

    def test_small(self, small_graph):
        self.check(small_graph)

    def test_graph_with_sinks(self):
        # dangling vertices exercise the degree-0 guard in generated sends
        g = Graph.from_edges(5, [(0, 1), (1, 2), (3, 2)])
        self.check(g)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_random_graphs(self, seed):
        self.check(make_graph(20, 60, seed))


class TestConductance:
    def check(self, graph):
        args = {"num": 1}
        ref = reference.conductance(graph, graph.node_props["member"], 1)
        interp = interpret(load_source("conductance"), graph, args)
        run = _compiled("conductance").program.run(graph, args)
        for got in (interp.result, run.result):
            if ref == float("inf"):
                assert got == ref
            else:
                assert abs(got - ref) <= TOL

    def test_small(self, small_graph):
        self.check(small_graph)

    def test_all_same_side(self):
        g = make_graph(10, 30, seed=2)
        g.node_props["member"] = [1] * 10  # Dout == 0 -> INF or 0 path
        self.check(g)

    def test_empty_side_no_cross(self):
        g = Graph.from_edges(3, [])
        g.add_node_prop("member", [1, 1, 1])
        attach = g.node_props["member"]
        assert reference.conductance(g, attach, 1) == 0.0
        self.check(g)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15, deadline=None)
    def test_random_graphs(self, seed):
        self.check(make_graph(22, 70, seed))


class TestSSSP:
    def check(self, graph):
        args = {"root": 0}
        ref = reference.sssp(graph, 0)
        interp = interpret(load_source("sssp"), graph, args)
        run = _compiled("sssp").program.run(graph, args)
        assert interp.outputs["dist"] == ref
        assert run.outputs["dist"] == ref

    def test_small(self, small_graph):
        self.check(small_graph)

    def test_unreachable_nodes_stay_infinite(self):
        g = Graph.from_edges(4, [(0, 1)], edge_props={"len": [2]})
        args = {"root": 0}
        run = _compiled("sssp").program.run(g, args)
        assert run.outputs["dist"] == [0, 2, float("inf"), float("inf")]

    def test_line_graph_distances(self):
        g = Graph.from_edges(5, [(i, i + 1) for i in range(4)], edge_props={"len": [1, 2, 3, 4]})
        run = _compiled("sssp").program.run(g, {"root": 0})
        assert run.outputs["dist"] == [0, 1, 3, 6, 10]

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15, deadline=None)
    def test_random_graphs(self, seed):
        self.check(make_graph(25, 90, seed))


class TestBipartiteMatching:
    def check(self, graph):
        is_left = graph.node_props["is_left"]
        interp = interpret(load_source("bipartite_matching"), graph, {})
        run = _compiled("bipartite_matching").program.run(graph, {})
        for result in (interp, run):
            match = result.outputs["match"]
            assert reference.is_valid_maximal_matching(graph, is_left, match)
            assert result.result == reference.matching_size(match, is_left)
        # Pregel and interpreter resolve write races identically (sender-id
        # order), so the matchings agree exactly:
        assert interp.outputs["match"] == run.outputs["match"]

    def test_fixture(self, bipartite_graph):
        self.check(bipartite_graph)

    def test_perfect_matching_possible(self):
        g = bipartite(4, 4, num_edges=16, seed=1)  # complete bipartite
        run = _compiled("bipartite_matching").program.run(g, {})
        assert run.result == 4

    def test_no_edges(self):
        g = bipartite(3, 3, num_edges=0, seed=1)
        run = _compiled("bipartite_matching").program.run(g, {})
        assert run.result == 0

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_random_graphs(self, seed):
        rng = random.Random(seed)
        g = bipartite(rng.randint(3, 15), rng.randint(3, 15), num_edges=rng.randint(0, 60), seed=seed)
        self.check(g)


class TestBetweennessCentrality:
    def check(self, graph, k, seed):
        args = {"K": k}
        roots = reference.bc_roots_for_seed(graph.num_nodes, k, seed)
        ref = reference.bc_approx(graph, roots)
        interp = interpret(load_source("bc_approx"), graph, args, seed=seed)
        run = _compiled("bc_approx").program.run(graph, args, seed=seed)
        close_lists(interp.outputs["bc"], ref)
        close_lists(run.outputs["bc"], ref)

    def test_small(self, small_graph):
        self.check(small_graph, k=3, seed=42)

    def test_single_root(self, tiny_graph):
        self.check(tiny_graph, k=1, seed=5)

    def test_disconnected_components(self):
        g = Graph.from_edges(6, [(0, 1), (1, 2), (3, 4)])
        self.check(g, k=4, seed=11)

    def test_zero_rounds(self, tiny_graph):
        run = _compiled("bc_approx").program.run(tiny_graph, {"K": 0})
        assert run.outputs["bc"] == [0.0] * tiny_graph.num_nodes

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=8, deadline=None)
    def test_random_graphs(self, seed):
        self.check(make_graph(18, 50, seed), k=2, seed=seed % 97)


class TestManualBaselinesAgainstReference:
    """The hand-written Pregel programs must match the references too."""

    def test_manual_pagerank(self, small_graph):
        from repro.algorithms.manual import MANUAL_PROGRAMS

        args = {"e": 1e-10, "d": 0.85, "max_iter": 12}
        run = MANUAL_PROGRAMS["pagerank"].run(small_graph, args)
        ref, _ = reference.pagerank(small_graph, 1e-10, 0.85, 12)
        close_lists(run.outputs["pg_rank"], ref)

    def test_manual_sssp(self, small_graph):
        from repro.algorithms.manual import MANUAL_PROGRAMS

        run = MANUAL_PROGRAMS["sssp"].run(small_graph, {"root": 0})
        assert run.outputs["dist"] == reference.sssp(small_graph, 0)

    def test_manual_avg_teen(self, small_graph):
        from repro.algorithms.manual import MANUAL_PROGRAMS

        run = MANUAL_PROGRAMS["avg_teen_cnt"].run(small_graph, {"K": 30})
        ref_cnt, ref_avg = reference.avg_teen_cnt(
            small_graph, small_graph.node_props["age"], 30
        )
        assert run.outputs["teen_cnt"] == ref_cnt
        assert abs(run.result - ref_avg) <= TOL

    def test_manual_conductance(self, small_graph):
        from repro.algorithms.manual import MANUAL_PROGRAMS

        run = MANUAL_PROGRAMS["conductance"].run(small_graph, {"num": 1})
        ref = reference.conductance(small_graph, small_graph.node_props["member"], 1)
        assert abs(run.result - ref) <= TOL

    def test_manual_bipartite(self, bipartite_graph):
        from repro.algorithms.manual import MANUAL_PROGRAMS

        run = MANUAL_PROGRAMS["bipartite_matching"].run(bipartite_graph, {})
        is_left = bipartite_graph.node_props["is_left"]
        assert reference.is_valid_maximal_matching(
            bipartite_graph, is_left, run.outputs["match"]
        )
        assert run.result == reference.matching_size(run.outputs["match"], is_left)
