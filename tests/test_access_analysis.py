"""Unit tests for the access-set analysis and loop classification — the
dataflow machinery behind payload inference and the §4.1 transformations."""

import pytest

from repro.analysis.access import (
    Access,
    AccessKind,
    declared_names,
    expr_reads,
    lvalue_access,
    stmt_reads,
    stmt_writes,
)
from repro.analysis.loops import classify_inner_loop, find_inner_loops
from repro.lang import parse_procedure
from repro.lang.typecheck import typecheck


def prepped(src: str):
    proc = parse_procedure(src)
    typecheck(proc)
    return proc


def body_of(src: str):
    return prepped(src).body.stmts


class TestExprReads:
    def test_scalar_and_prop_reads(self):
        (loop,) = body_of(
            "Procedure p(G: Graph, a: N_P<Int>, K: Int) {"
            "  Foreach (n: G.Nodes)[n.a > K] { } }"
        )
        reads = expr_reads(loop.filter)
        assert Access(AccessKind.PROP, "n", "a") in reads
        assert Access(AccessKind.SCALAR, "K") in reads

    def test_method_read(self):
        stmts = body_of(
            "Procedure p(G: Graph) { Foreach (n: G.Nodes) { Int d = n.Degree(); } }"
        )
        decl = stmts[0].body.stmts[0]
        assert Access(AccessKind.METHOD, "n", "Degree") in expr_reads(decl.init)

    def test_edge_prop_read_distinguished(self):
        stmts = body_of(
            "Procedure p(G: Graph, w: E_P<Int>) {"
            "  Foreach (n: G.Nodes) { Foreach (s: n.Nbrs) {"
            "    Edge e = s.ToEdge(); Int x = e.w; } } }"
        )
        decl = stmts[0].body.stmts[0].body.stmts[1]
        assert Access(AccessKind.EDGE_PROP, "e", "w") in expr_reads(decl.init)

    def test_reduce_expr_reads_cover_filter_and_body(self):
        stmts = body_of(
            "Procedure p(G: Graph, a, b: N_P<Int>): Int {"
            "  Return Sum(u: G.Nodes)[u.a > 0]{u.b}; }"
        )
        reads = expr_reads(stmts[0].expr)
        members = {(r.kind, r.member) for r in reads}
        assert (AccessKind.PROP, "a") in members
        assert (AccessKind.PROP, "b") in members


class TestWritesAndReads:
    def test_reduce_assign_reads_its_target(self):
        stmts = body_of("Procedure p(G: Graph) { Int s = 0; s += 1; }")
        reads = stmt_reads(stmts[1])
        assert Access(AccessKind.SCALAR, "s") in reads

    def test_plain_assign_does_not_read_target(self):
        stmts = body_of("Procedure p(G: Graph) { Int s = 0; s = 1; }")
        assert Access(AccessKind.SCALAR, "s") not in stmt_reads(stmts[1])

    def test_prop_write_reads_the_handle(self):
        stmts = body_of(
            "Procedure p(G: Graph, a: N_P<Int>) {"
            "  Foreach (n: G.Nodes) { n.a = 1; } }"
        )
        assign = stmts[0].body.stmts[0]
        assert Access(AccessKind.SCALAR, "n") in stmt_reads(assign)
        assert stmt_writes(assign) == [Access(AccessKind.PROP, "n", "a")]

    def test_recursive_collection(self):
        (loop,) = body_of(
            "Procedure p(G: Graph, a: N_P<Int>) {"
            "  Foreach (n: G.Nodes) { If (n.a > 0) { n.a = 0; } } }"
        )
        assert Access(AccessKind.PROP, "n", "a") in stmt_writes(loop)

    def test_lvalue_access_rejects_complex_targets(self):
        from repro.lang.ast import Binary, BinOp, IntLit

        with pytest.raises(ValueError):
            lvalue_access(Binary(BinOp.ADD, IntLit(1), IntLit(2)))


class TestDeclaredNames:
    def test_descends_into_if_but_not_loops(self):
        (loop,) = body_of(
            "Procedure p(G: Graph, f: N_P<Bool>) {"
            "  Foreach (n: G.Nodes) {"
            "    Int a = 0;"
            "    If (n.f) { Int b = 1; }"
            "    Foreach (t: n.Nbrs) { Int c = 2; }"
            "  } }"
        )
        names = declared_names(loop.body)
        assert names == {"a", "b"}


class TestLoopClassification:
    def nest(self, body: str, props="a: N_P<Int>, b: N_P<Int>"):
        (loop,) = body_of(
            f"Procedure p(G: Graph, {props}) {{"
            f"  Foreach (n: G.Nodes) {{ {body} }} }}"
        )
        inners = find_inner_loops(loop)
        assert len(inners) == 1
        return classify_inner_loop(loop, inners[0])

    def test_push_classification(self):
        report = self.nest("Foreach (t: n.Nbrs) { t.a += n.b; }")
        assert report.is_push and not report.is_pull
        assert report.inner_prop_writes == ["a"]

    def test_pull_prop_classification(self):
        report = self.nest("Foreach (t: n.Nbrs) { n.a += t.b; }")
        assert report.is_pull and not report.is_push
        assert report.outer_prop_writes == ["a"]

    def test_pull_scalar_classification(self):
        report = self.nest("Int s = 0; Foreach (t: n.Nbrs) { s += t.b; }")
        assert report.outer_scalar_writes == ["s"]

    def test_global_scalar_not_outer(self):
        (decl, loop) = body_of(
            "Procedure p(G: Graph, b: N_P<Int>) {"
            "  Int s = 0;"
            "  Foreach (n: G.Nodes) { Foreach (t: n.Nbrs) { s += t.b; } } }"
        )
        report = classify_inner_loop(loop, find_inner_loops(loop)[0])
        assert report.global_scalar_writes == ["s"]
        assert not report.is_pull

    def test_mixed(self):
        report = self.nest("Foreach (t: n.Nbrs) { t.a += 1; n.b += 1; }")
        assert report.is_mixed

    def test_inner_locals_excluded(self):
        report = self.nest("Foreach (t: n.Nbrs) { Int x = t.b; t.a += x; }")
        assert not report.is_pull

    def test_find_inner_loops_through_if(self):
        (loop,) = body_of(
            "Procedure p(G: Graph, f: N_P<Bool>, a: N_P<Int>) {"
            "  Foreach (n: G.Nodes) {"
            "    If (n.f) { Foreach (t: n.Nbrs) { t.a += 1; } }"
            "    Else { Foreach (t: n.Nbrs) { t.a += 2; } }"
            "  } }"
        )
        assert len(find_inner_loops(loop)) == 2
