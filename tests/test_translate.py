"""Translator tests: state-machine structure, message layouts, payload
inference, random writes, incoming-neighbor prologue (§3.1, §4.3)."""

import pytest

from repro.lang import parse_procedure
from repro.lang.errors import TranslationError
from repro.pregelir.ir import (
    MAssign,
    MBranch,
    MFinalize,
    MHalt,
    MVPhase,
    VGlobalPut,
    VIf,
    VMsgLoop,
    VSendNbrs,
    VSendTo,
)
from repro.transform import to_canonical
from repro.translate import translate
from repro.lang import types as ty


def build(src: str):
    return translate(to_canonical(parse_procedure(src)))


PUSH_SRC = """
Procedure p(G: Graph, bar: N_P<Int>; foo: N_P<Int>) {
  Foreach (n: G.Nodes) {
    Foreach (t: n.Nbrs) {
      t.foo += n.bar;
    }
  }
}
"""


class TestNeighborhoodCommunication:
    def test_send_phase_then_receive_phase(self):
        ir = build(PUSH_SRC)
        phases = [i.phase for i in ir.master_code if isinstance(i, MVPhase)]
        assert len(phases) == 2
        send, recv = (ir.phases[p] for p in phases)
        assert send.sent_tags() == {0}
        assert recv.received_tags() == {0}

    def test_payload_is_the_outer_scoped_read(self):
        ir = build(PUSH_SRC)
        layout = ir.messages[0]
        assert len(layout.fields) == 1
        assert layout.fields[0][1] == ty.INT

    def test_constant_rhs_needs_no_payload(self):
        ir = build(
            """
            Procedure p(G: Graph; cnt: N_P<Int>) {
              Foreach (n: G.Nodes) {
                Foreach (t: n.Nbrs) {
                  t.cnt += 1;
                }
              }
            }
            """
        )
        assert ir.messages[0].fields == []

    def test_duplicate_payload_deduplicated(self):
        # SSSP shape: the same sender expression used twice travels once.
        ir = build(
            """
            Procedure p(G: Graph, d: N_P<Int>; nxt: N_P<Int>, upd: N_P<Bool>) {
              Foreach (n: G.Nodes) {
                Foreach (s: n.Nbrs) {
                  s.upd |= (n.d + 1) < s.nxt;
                  s.nxt min= n.d + 1;
                }
              }
            }
            """
        )
        assert len(ir.messages[0].fields) == 1

    def test_mixed_expression_splits_sender_parts(self):
        # BC's delta shape: v.sigma / w.sigma * (1 + w.delta) with v receiver
        ir = build(
            """
            Procedure p(G: Graph, sigma, delta: N_P<Float>; acc: N_P<Float>) {
              Foreach (w: G.Nodes) {
                Foreach (v: w.InNbrs) {
                  v.acc += (v.sigma / w.sigma) * (1.0 + w.delta);
                }
              }
            }
            """
        )
        # two sender-evaluable payload fields: w.sigma and (1.0 + w.delta)
        in_tag = next(
            t for t, l in ir.messages.items() if l.label.startswith("nbr")
        )
        assert len(ir.messages[in_tag].fields) == 2

    def test_message_size_untagged_vs_tagged(self):
        ir = build(PUSH_SRC)
        assert not ir.tagged
        assert ir.message_size(0) == 4  # one Int, no tag byte


class TestGlobalObjects:
    SRC = """
    Procedure p(G: Graph, age: N_P<Int>, K: Int): Int {
      Int S = 0;
      Foreach (n: G.Nodes)[n.age > K] {
        S += n.age;
      }
      Return S;
    }
    """

    def test_put_and_finalize(self):
        ir = build(self.SRC)
        phase = next(p for p in ir.phases.values() if p.compute)
        puts = [s for s in phase.compute if isinstance(s, VGlobalPut)]
        assert [p.name for p in puts] == ["S"]
        finals = [i for i in ir.master_code if isinstance(i, MFinalize)]
        assert [f.name for f in finals] == ["S"]

    def test_finalize_follows_the_phase(self):
        ir = build(self.SRC)
        idx_phase = next(
            i for i, instr in enumerate(ir.master_code) if isinstance(instr, MVPhase)
        )
        idx_final = next(
            i for i, instr in enumerate(ir.master_code) if isinstance(instr, MFinalize)
        )
        assert idx_final > idx_phase

    def test_scalar_params_become_master_fields(self):
        ir = build(self.SRC)
        assert ir.master_fields["K"] == ty.INT
        assert ir.master_fields["S"] == ty.INT

    def test_return_becomes_halt_with_result(self):
        ir = build(self.SRC)
        halts = [i for i in ir.master_code if isinstance(i, MHalt)]
        assert any(h.result is not None for h in halts)


class TestRandomWriting:
    SRC = """
    Procedure p(G: Graph, next: N_P<Node>; mark: N_P<Int>) {
      Foreach (n: G.Nodes) {
        Node w = n.next;
        w.mark += 1;
      }
    }
    """

    def test_send_to_node(self):
        ir = build(self.SRC)
        phase = next(p for p in ir.phases.values() if p.compute)
        sends = [s for s in phase.compute if isinstance(s, VSendTo)]
        assert len(sends) == 1

    def test_receive_applies_reduction(self):
        ir = build(self.SRC)
        recv_phase = next(p for p in ir.phases.values() if p.receive)
        loop = recv_phase.receive[0]
        assert isinstance(loop, VMsgLoop)


class TestIncomingNeighbors:
    SRC = """
    Procedure p(G: Graph, bar: N_P<Int>; foo: N_P<Int>) {
      Foreach (t: G.Nodes) {
        Foreach (n: t.InNbrs) {
          n.foo += t.bar;
        }
      }
    }
    """

    def test_prologue_phases_inserted_first(self):
        ir = build(self.SRC)
        assert ir.needs_in_nbrs
        first_two = [i.phase for i in ir.master_code if isinstance(i, MVPhase)][:2]
        labels = [ir.phases[p].label for p in first_two]
        assert labels == ["in_nbrs_send", "in_nbrs_build"]

    def test_id_message_tag_added(self):
        ir = build(self.SRC)
        id_layouts = [l for l in ir.messages.values() if l.label == "in_nbrs_id"]
        assert len(id_layouts) == 1
        assert id_layouts[0].fields[0][1] == ty.NODE

    def test_in_direction_send(self):
        ir = build(self.SRC)
        sends = [
            s
            for p in ir.phases.values()
            for s in p.compute
            if isinstance(s, VSendNbrs)
        ]
        assert any(s.direction == "in" for s in sends)


class TestStateMachine:
    def test_while_becomes_branch(self):
        ir = build(
            """
            Procedure p(G: Graph; x: N_P<Int>) {
              Int k = 0;
              While (k < 3) {
                Foreach (n: G.Nodes) { n.x = k; }
                k++;
              }
            }
            """
        )
        branches = [i for i in ir.master_code if isinstance(i, MBranch)]
        assert branches

    def test_if_with_returns(self):
        ir = build(
            """
            Procedure p(G: Graph, K: Int): Int {
              If (K > 0) {
                Return 1;
              } Else {
                Return 2;
              }
            }
            """
        )
        halts = [i for i in ir.master_code if isinstance(i, MHalt)]
        assert len(halts) >= 2

    def test_paper_claim_bc_has_four_message_types(self):
        from repro.algorithms.sources import load_procedure

        ir = translate(to_canonical(load_procedure("bc_approx")))
        assert len(ir.messages) == 4  # §5.1: "four different message types"

    def test_paper_claim_bc_has_many_kernels(self):
        from repro.algorithms.sources import load_procedure

        ir = translate(to_canonical(load_procedure("bc_approx")))
        # §5.1: "nine vertex-centric kernels" (before optimization our
        # decomposition is finer; merging brings it back down)
        assert ir.vertex_phase_count() >= 9


class TestErrors:
    def test_edge_prop_on_in_direction_rejected(self):
        src = """
        Procedure p(G: Graph, w: E_P<Int>; foo: N_P<Int>) {
          Foreach (t: G.Nodes) {
            Foreach (n: t.InNbrs) {
              Edge e = n.ToEdge();
              n.foo += e.w;
            }
          }
        }
        """
        from repro.lang.errors import GreenMarlError

        with pytest.raises(GreenMarlError):
            build(src)
