"""Structural tests for the hand-written Pregel baselines: superstep and
message formulas on crafted graphs, argument validation, voting behavior."""

import pytest

from repro.algorithms.manual import MANUAL_PROGRAMS
from repro.graphgen import attach_standard_props, bipartite, uniform_random
from repro.pregel import Graph


def graph_with_props(n=40, m=160, seed=31):
    g = uniform_random(n, m, seed=seed)
    attach_standard_props(g, seed=seed + 1)
    return g


class TestManualAvgTeen:
    def test_two_supersteps_exactly(self):
        g = graph_with_props()
        run = MANUAL_PROGRAMS["avg_teen_cnt"].run(g, {"K": 30})
        assert run.metrics.supersteps == 2

    def test_messages_equal_teen_out_edges(self):
        g = graph_with_props()
        age = g.node_props["age"]
        expected = sum(
            g.out_degree(v) for v in g.nodes() if 13 <= age[v] <= 19
        )
        run = MANUAL_PROGRAMS["avg_teen_cnt"].run(g, {"K": 30})
        assert run.metrics.messages == expected

    def test_empty_payload_messages(self):
        g = graph_with_props()
        run = MANUAL_PROGRAMS["avg_teen_cnt"].run(g, {"K": 30})
        assert run.metrics.message_bytes == 0

    def test_missing_age_prop(self):
        g = Graph.from_edges(3, [(0, 1)])
        with pytest.raises(ValueError):
            MANUAL_PROGRAMS["avg_teen_cnt"].run(g, {"K": 30})

    def test_no_old_users_yields_zero(self):
        g = Graph.from_edges(3, [(0, 1), (1, 2)])
        g.add_node_prop("age", [15, 16, 17])
        run = MANUAL_PROGRAMS["avg_teen_cnt"].run(g, {"K": 30})
        assert run.result == 0.0


class TestManualPageRank:
    def test_supersteps_is_iterations_plus_one(self):
        g = graph_with_props()
        run = MANUAL_PROGRAMS["pagerank"].run(g, {"e": 0.0, "d": 0.85, "max_iter": 7})
        assert run.metrics.supersteps == 8  # init+send, 7 update rounds

    def test_messages_per_superstep_equal_edges(self):
        g = graph_with_props()
        run = MANUAL_PROGRAMS["pagerank"].run(g, {"e": 0.0, "d": 0.85, "max_iter": 5})
        assert run.metrics.messages == g.num_edges * run.metrics.supersteps

    def test_converges_early_with_loose_epsilon(self):
        g = graph_with_props()
        strict = MANUAL_PROGRAMS["pagerank"].run(g, {"e": 0.0, "d": 0.85, "max_iter": 30})
        loose = MANUAL_PROGRAMS["pagerank"].run(g, {"e": 0.1, "d": 0.85, "max_iter": 30})
        assert loose.metrics.supersteps < strict.metrics.supersteps


class TestManualSSSP:
    def test_voting_terminates_without_master(self):
        g = graph_with_props()
        run = MANUAL_PROGRAMS["sssp"].run(g, {"root": 0})
        assert run.metrics.halt_reason == "all_halted"

    def test_supersteps_bounded_by_longest_shortest_path(self):
        # line graph: distances improve once per superstep
        g = Graph.from_edges(6, [(i, i + 1) for i in range(5)],
                             edge_props={"len": [1] * 5})
        run = MANUAL_PROGRAMS["sssp"].run(g, {"root": 0})
        assert run.outputs["dist"] == [0, 1, 2, 3, 4, 5]
        # start superstep + one per hop; termination detected at the head of
        # the next superstep without running it
        assert run.metrics.supersteps == 6

    def test_isolated_root(self):
        g = Graph.from_edges(3, [(1, 2)], edge_props={"len": [4]})
        run = MANUAL_PROGRAMS["sssp"].run(g, {"root": 0})
        assert run.outputs["dist"][0] == 0
        assert run.outputs["dist"][1] == float("inf")


class TestManualConductance:
    def test_two_supersteps(self):
        g = graph_with_props()
        run = MANUAL_PROGRAMS["conductance"].run(g, {"num": 1})
        assert run.metrics.supersteps == 2

    def test_one_message_per_edge(self):
        g = graph_with_props()
        run = MANUAL_PROGRAMS["conductance"].run(g, {"num": 1})
        assert run.metrics.messages == g.num_edges


class TestManualBipartite:
    def test_three_supersteps_per_round(self):
        g = bipartite(20, 20, num_edges=100, seed=9)
        run = MANUAL_PROGRAMS["bipartite_matching"].run(g)
        assert run.metrics.supersteps % 3 == 2  # halts at a phase-2 master

    def test_empty_graph_halts_immediately(self):
        g = bipartite(3, 3, num_edges=0, seed=1)
        run = MANUAL_PROGRAMS["bipartite_matching"].run(g)
        assert run.result == 0
        assert run.metrics.supersteps <= 3

    def test_single_edge(self):
        g = Graph.from_edges(2, [(0, 1)])
        g.add_node_prop("is_left", [True, False])
        run = MANUAL_PROGRAMS["bipartite_matching"].run(g)
        assert run.result == 1
        assert run.outputs["match"] == [1, 0]


class TestRegistry:
    def test_five_baselines_no_bc(self):
        assert set(MANUAL_PROGRAMS) == {
            "avg_teen_cnt",
            "pagerank",
            "conductance",
            "sssp",
            "bipartite_matching",
        }
        assert "bc_approx" not in MANUAL_PROGRAMS  # the paper's point
