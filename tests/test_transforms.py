"""Transformation-pass tests: normalize, BFS lowering, random access,
dissection and edge flipping — the §4.1 rules, checked structurally."""

import pytest

from repro.lang import parse_procedure, pretty
from repro.lang.ast import (
    Assign,
    Bfs,
    Foreach,
    Ident,
    IterKind,
    PropAccess,
    ReduceAssign,
    ReduceExpr,
    VarDecl,
    While,
    walk,
)
from repro.lang.errors import NotPregelCanonicalError, TransformError
from repro.lang.typecheck import typecheck
from repro.transform import to_canonical
from repro.transform.bfs_lowering import lower_bfs
from repro.transform.dissect import dissect
from repro.transform.edge_flip import flip_edges
from repro.transform.normalize import normalize
from repro.transform.random_access import rewrite_random_access
from repro.transform.rewriter import NameGenerator


def prepped(src: str):
    proc = parse_procedure(src)
    typecheck(proc)
    return proc


def run_normalize(src: str):
    proc = prepped(src)
    normalize(proc)
    typecheck(proc)
    return proc


class TestNormalize:
    def test_group_assignment_becomes_foreach(self):
        proc = run_normalize(
            "Procedure p(G: Graph, d: N_P<Int>) { G.d = 0; }"
        )
        (loop,) = proc.body.stmts
        assert isinstance(loop, Foreach)
        assert loop.source.kind is IterKind.NODES
        body_stmt = loop.body.stmts[0]
        assert isinstance(body_stmt, Assign)
        assert isinstance(body_stmt.target, PropAccess)

    def test_group_assignment_reads_rewritten(self):
        proc = run_normalize(
            "Procedure p(G: Graph, a, b: N_P<Int>) { G.a = G.b; }"
        )
        loop = proc.body.stmts[0]
        assign = loop.body.stmts[0]
        # RHS must read the iterator's own property, not the graph's
        assert isinstance(assign.expr, PropAccess)
        assert isinstance(assign.expr.target, Ident)
        assert assign.expr.target.name == loop.iterator

    def test_sum_extraction(self):
        proc = run_normalize(
            "Procedure p(G: Graph, w: N_P<Double>): Double {"
            "  Double s = Sum(u: G.Nodes){u.w};"
            "  Return s; }"
        )
        kinds = [type(s).__name__ for s in proc.body.stmts]
        assert kinds == ["VarDecl", "Foreach", "VarDecl", "Return"]
        assert not any(isinstance(n, ReduceExpr) for n in walk(proc.body))

    def test_count_becomes_sum_of_ones(self):
        proc = run_normalize(
            "Procedure p(G: Graph, age: N_P<Int>): Int {"
            "  Int c = Count(u: G.Nodes)[u.age > 10];"
            "  Return c; }"
        )
        loop = proc.body.stmts[1]
        accum = loop.body.stmts[0]
        assert isinstance(accum, ReduceAssign)
        assert loop.filter is not None

    def test_nested_reduce_extraction(self):
        # Conductance's Sum{Count} shape: inner Count lands inside the outer loop
        proc = run_normalize(
            "Procedure p(G: Graph, m: N_P<Int>): Int {"
            "  Int c = Sum(u: G.Nodes){Count(j: u.Nbrs)[j.m == 1]};"
            "  Return c; }"
        )
        outer = proc.body.stmts[1]
        assert isinstance(outer, Foreach)
        inner_kinds = [type(s).__name__ for s in outer.body.stmts]
        assert "Foreach" in inner_kinds
        assert not any(isinstance(n, ReduceExpr) for n in walk(proc.body))

    def test_avg_expands_to_sum_and_count(self):
        proc = run_normalize(
            "Procedure p(G: Graph, w: N_P<Int>): Double {"
            "  Double a = Avg(u: G.Nodes){u.w};"
            "  Return a; }"
        )
        loops = [s for s in proc.body.stmts if isinstance(s, Foreach)]
        assert len(loops) == 2  # one for the sum, one for the count

    def test_property_decl_hoisted_from_while(self):
        proc = run_normalize(
            "Procedure p(G: Graph) { While (False) { N_P<Int> tmp; } }"
        )
        assert isinstance(proc.body.stmts[0], VarDecl)
        assert proc.body.stmts[0].decl_type.is_property()

    def test_reduce_in_while_condition_rejected(self):
        with pytest.raises(TransformError):
            run_normalize(
                "Procedure p(G: Graph, w: N_P<Int>) {"
                "  While (Exist(u: G.Nodes){u.w > 0}) { } }"
            )

    def test_exist_becomes_or_reduction(self):
        proc = run_normalize(
            "Procedure p(G: Graph, f: N_P<Bool>): Bool {"
            "  Bool b = Exist(u: G.Nodes){u.f};"
            "  Return b; }"
        )
        loop = proc.body.stmts[1]
        accum = loop.body.stmts[0]
        assert isinstance(accum, ReduceAssign)
        assert loop.filter is None  # the predicate is the reduced value


class TestBfsLowering:
    SRC = """
    Procedure p(G: Graph, s: Node, sigma: N_P<Float>) {
      InBFS (v: G.Nodes From s)[v != s] {
        v.sigma = Sum(w: v.UpNbrs){w.sigma};
      }
      InReverse[v != s] {
        v.sigma += 1.0;
      }
    }
    """

    def lowered(self):
        proc = prepped(self.SRC)
        normalize(proc)
        typecheck(proc)
        assert lower_bfs(proc, "G", NameGenerator.for_procedure(proc))
        typecheck(proc)
        return proc

    def test_no_bfs_remains(self):
        proc = self.lowered()
        assert not any(isinstance(n, Bfs) for n in walk(proc.body))

    def test_two_while_loops_forward_and_reverse(self):
        proc = self.lowered()
        whiles = [s for s in proc.body.stmts if isinstance(s, While)]
        assert len(whiles) == 2

    def test_up_nbrs_rewritten_to_in_nbrs_with_level_filter(self):
        proc = self.lowered()
        kinds = [
            n.source.kind
            for n in walk(proc.body)
            if isinstance(n, Foreach) and n.source.kind is IterKind.UP_NBRS
        ]
        assert kinds == []
        in_loops = [
            n
            for n in walk(proc.body)
            if isinstance(n, Foreach) and n.source.kind is IterKind.IN_NBRS
        ]
        assert in_loops and all(l.filter is not None for l in in_loops)

    def test_level_property_added(self):
        proc = self.lowered()
        props = [
            s
            for s in proc.body.stmts
            if isinstance(s, VarDecl) and s.decl_type.is_property()
        ]
        assert any("lev" in name for d in props for name in d.names)

    def test_nested_bfs_rejected(self):
        src = """
        Procedure p(G: Graph, s: Node) {
          Foreach (n: G.Nodes) {
            InBFS (v: G.Nodes From s) { }
          }
        }
        """
        proc = prepped(src)
        with pytest.raises(TransformError):
            lower_bfs(proc, "G", NameGenerator.for_procedure(proc))


class TestRandomAccess:
    def test_sequential_write_becomes_guarded_loop(self):
        proc = prepped(
            "Procedure p(G: Graph, root: Node, d: N_P<Int>) { root.d = 0; }"
        )
        assert rewrite_random_access(proc, "G", NameGenerator.for_procedure(proc))
        (loop,) = proc.body.stmts
        assert isinstance(loop, Foreach)
        assert loop.filter is not None
        assert pretty(loop.filter).endswith("== root")

    def test_write_inside_while_handled(self):
        proc = prepped(
            "Procedure p(G: Graph, root: Node, d: N_P<Int>) {"
            "  While (False) { root.d = 0; } }"
        )
        assert rewrite_random_access(proc, "G", NameGenerator.for_procedure(proc))
        loop = proc.body.stmts[0].body.stmts[0]
        assert isinstance(loop, Foreach)

    def test_sequential_random_read_rejected(self):
        proc = prepped(
            "Procedure p(G: Graph, root: Node, d: N_P<Int>) { Int x = root.d; }"
        )
        with pytest.raises(TransformError) as err:
            rewrite_random_access(proc, "G", NameGenerator.for_procedure(proc))
        assert "random read" in str(err.value)

    def test_untouched_parallel_writes(self):
        proc = prepped(
            "Procedure p(G: Graph, d: N_P<Int>) {"
            "  Foreach (n: G.Nodes) { n.d = 0; } }"
        )
        assert not rewrite_random_access(proc, "G", NameGenerator.for_procedure(proc))


def canonicalize(src: str):
    return to_canonical(parse_procedure(src))


class TestDissect:
    PULL_SRC = """
    Procedure p(G: Graph, age: N_P<Int>; cnt: N_P<Int>) {
      Foreach (n: G.Nodes) {
        n.cnt = Count(t: n.InNbrs)[t.age >= 13];
      }
    }
    """

    def test_scalar_promoted_and_loop_fissioned(self):
        result = canonicalize(self.PULL_SRC)
        loops = [s for s in result.procedure.body.stmts if isinstance(s, Foreach)]
        # init, flipped accumulation, copy-back
        assert len(loops) == 3
        assert "Dissecting Loops" in result.rules.applied

    def test_temp_property_declared(self):
        result = canonicalize(self.PULL_SRC)
        decls = [
            s
            for s in result.procedure.body.stmts
            if isinstance(s, VarDecl) and s.decl_type.is_property()
        ]
        assert len(decls) == 1

    def test_push_loop_not_dissected(self):
        src = """
        Procedure p(G: Graph, bar: N_P<Int>; foo: N_P<Int>) {
          Foreach (n: G.Nodes) {
            Foreach (t: n.Nbrs) {
              t.foo += n.bar;
            }
          }
        }
        """
        result = canonicalize(src)
        assert "Dissecting Loops" not in result.rules.applied
        assert "Flipping Edge" not in result.rules.applied

    def test_mixed_pull_push_rejected(self):
        src = """
        Procedure p(G: Graph, a: N_P<Int>; b: N_P<Int>) {
          Foreach (n: G.Nodes) {
            Foreach (t: n.Nbrs) {
              t.b += 1;
              n.a += 1;
            }
          }
        }
        """
        with pytest.raises(TransformError):
            canonicalize(src)

    def test_conditional_pull_rejected(self):
        src = """
        Procedure p(G: Graph, a: N_P<Int>, flag: N_P<Bool>) {
          Foreach (n: G.Nodes) {
            If (n.flag) {
              Foreach (t: n.InNbrs) {
                n.a += 1;
              }
            }
          }
        }
        """
        with pytest.raises(TransformError) as err:
            canonicalize(src)
        assert "conditional" in str(err.value)


class TestEdgeFlip:
    def test_flip_swaps_iterators_and_direction(self):
        src = """
        Procedure p(G: Graph, bar: N_P<Int>; foo: N_P<Int>) {
          Foreach (n: G.Nodes) {
            Foreach (t: n.InNbrs) {
              n.foo max= t.bar;
            }
          }
        }
        """
        result = canonicalize(src)
        (outer,) = [s for s in result.procedure.body.stmts if isinstance(s, Foreach)]
        assert outer.iterator == "t"
        inner = outer.body.stmts[0]
        assert isinstance(inner, Foreach)
        assert inner.iterator == "n"
        assert inner.source.kind is IterKind.NBRS  # InNbrs flipped to Nbrs
        assert "Flipping Edge" in result.rules.applied

    def test_sender_only_filter_moves_to_new_outer(self):
        src = """
        Procedure p(G: Graph, age: N_P<Int>; cnt: N_P<Int>) {
          Foreach (n: G.Nodes) {
            Foreach (t: n.InNbrs)[t.age >= 13 && t.age <= 19] {
              n.cnt += 1;
            }
          }
        }
        """
        result = canonicalize(src)
        outer = next(s for s in result.procedure.body.stmts if isinstance(s, Foreach))
        assert outer.filter is not None
        assert "age" in pretty(outer.filter)
        inner = outer.body.stmts[0]
        assert inner.filter is None

    def test_receiver_filter_stays_inner(self):
        src = """
        Procedure p(G: Graph, m: N_P<Int>; cnt: N_P<Int>) {
          Foreach (u: G.Nodes)[u.m == 1] {
            Foreach (j: u.Nbrs)[j.m != 1] {
              u.cnt += 1;
            }
          }
        }
        """
        result = canonicalize(src)
        outer = next(s for s in result.procedure.body.stmts if isinstance(s, Foreach))
        # new outer is j (the sender); its filter is the old inner j-filter
        assert outer.iterator == "j"
        inner = outer.body.stmts[0]
        # old outer filter (on u) moved to the receiver side
        assert inner.filter is not None and "u.m" in pretty(inner.filter)
        assert inner.source.kind is IterKind.IN_NBRS

    def test_flip_with_edge_property_rejected(self):
        src = """
        Procedure p(G: Graph, w: E_P<Int>; acc: N_P<Int>) {
          Foreach (n: G.Nodes) {
            Foreach (t: n.InNbrs) {
              Edge e = t.ToEdge();
              n.acc += e.w;
            }
          }
        }
        """
        with pytest.raises((TransformError, NotPregelCanonicalError)):
            canonicalize(src)


class TestPipelineEndToEnd:
    def test_all_algorithms_canonicalize(self):
        from repro.algorithms.sources import ALGORITHMS, load_procedure

        for name in ALGORITHMS:
            result = to_canonical(load_procedure(name))
            assert result.procedure is not None

    def test_canonical_output_is_reparseable(self):
        from repro.algorithms.sources import ALGORITHMS, load_procedure

        for name in ALGORITHMS:
            result = to_canonical(load_procedure(name))
            text = pretty(result.procedure)
            reparsed = parse_procedure(text)
            typecheck(reparsed)

    def test_expected_rules_per_algorithm(self):
        from repro.algorithms.sources import load_procedure

        bc = to_canonical(load_procedure("bc_approx"))
        assert {"BFS Traversal", "Dissecting Loops", "Flipping Edge", "Random Access (Seq.)"} <= bc.rules.applied
        sssp = to_canonical(load_procedure("sssp"))
        assert "Random Access (Seq.)" in sssp.rules.applied
        assert "Flipping Edge" not in sssp.rules.applied
        bip = to_canonical(load_procedure("bipartite_matching"))
        assert "BFS Traversal" not in bip.rules.applied

    def test_sequential_for_rejected(self):
        with pytest.raises(NotPregelCanonicalError):
            canonicalize("Procedure p(G: Graph, a: N_P<Int>) { For (n: G.Nodes) { n.a = 0; } }")

    def test_return_inside_loop_rejected(self):
        with pytest.raises(NotPregelCanonicalError):
            canonicalize(
                "Procedure p(G: Graph): Int { Foreach (n: G.Nodes) { Return 1; } }"
            )

    def test_triple_nesting_rejected(self):
        src = """
        Procedure p(G: Graph, a: N_P<Int>) {
          Foreach (n: G.Nodes) {
            Foreach (t: n.Nbrs) {
              Foreach (u: t.Nbrs) {
                u.a += 1;
              }
            }
          }
        }
        """
        with pytest.raises((TransformError, NotPregelCanonicalError)):
            canonicalize(src)
