"""Frontier-aware superstep scheduling (engine extension): sparse/dense
parity on every algorithm, batched message routing, interaction with voting,
combiners, and fault recovery, and checkpointing of the frontier state."""

import pytest

from repro.algorithms.manual import MANUAL_PROGRAMS, ManualBFS
from repro.algorithms.sources import ALGORITHMS
from repro.compiler import compile_algorithm
from repro.bench.harness import default_args
from repro.graphgen.registry import applicable_graphs, load_graph
from repro.pregel import Graph, PregelEngine
from repro.pregel.ft import CrashEvent, FaultPlan, FaultTolerance

SCALE = 0.125  # 500-node graphs: big enough to cross worker boundaries


def line_graph(n: int) -> Graph:
    return Graph.from_edges(n, [(i, i + 1) for i in range(n - 1)])


def bfs_vertex(level: list):
    def vertex(ctx, vid, messages):
        if ctx.superstep == 0:
            if vid == 0:
                level[vid] = 0
                ctx.send_to_out_nbrs(vid, (0,))
        elif messages and level[vid] < 0:
            level[vid] = ctx.superstep
            ctx.send_to_out_nbrs(vid, (0,))
        ctx.vote_to_halt(vid)

    return vertex


class TestConstruction:
    def test_unknown_scheduling_rejected(self):
        with pytest.raises(ValueError, match="scheduling"):
            PregelEngine(line_graph(2), lambda *a: None, scheduling="eager")

    def test_threshold_out_of_range_rejected(self):
        for bad in (0.0, -0.5, 1.5):
            with pytest.raises(ValueError, match="frontier_threshold"):
                PregelEngine(
                    line_graph(2), lambda *a: None, frontier_threshold=bad
                )

    def test_vote_to_halt_without_voting_raises(self):
        # Silently ignoring the vote used to mask non-termination as
        # halt_reason="max_supersteps"; the engine now fails loudly.
        def vertex(ctx, vid, messages):
            ctx.vote_to_halt(vid)

        engine = PregelEngine(line_graph(2), vertex, use_voting=False)
        with pytest.raises(RuntimeError, match="use_voting=True"):
            engine.run()


class TestSparseExecution:
    """BFS on a line graph: the frontier is a single vertex every superstep,
    the canonical case the sparse path exists for."""

    def _run(self, n: int, **opts):
        level = [-1] * n
        engine = PregelEngine(
            line_graph(n),
            bfs_vertex(level),
            use_voting=True,
            message_size=lambda m: 0,
            **opts,
        )
        return engine, level, engine.run()

    def test_sparse_matches_dense_bit_for_bit(self):
        _, dense_level, dense = self._run(64, scheduling="dense")
        engine, level, metrics = self._run(
            64, scheduling="frontier", frontier_threshold=1.0
        )
        assert level == dense_level == [i for i in range(64)]
        assert metrics.parity_key() == dense.parity_key()
        assert metrics.halt_reason == "all_halted"
        # the run ended inside the sparse regime: the frontier is live
        assert not engine._frontier_dirty

    def test_dense_fallback_above_threshold(self):
        # threshold so low every superstep falls back to the dense scan;
        # results must be unchanged
        _, dense_level, dense = self._run(64, scheduling="dense")
        engine, level, metrics = self._run(
            64, scheduling="frontier", frontier_threshold=1e-9
        )
        assert level == dense_level
        assert metrics.parity_key() == dense.parity_key()
        assert engine._frontier_dirty  # never entered the sparse regime

    def test_outbox_view_merges_per_worker_batches(self):
        # master runs before delivery, so at superstep 1 it observes the
        # in-flight messages sent at superstep 0 under either scheduler
        g = Graph.from_edges(4, [(0, 1), (0, 2), (0, 3)])
        seen = {}

        def vertex(ctx, vid, messages):
            if ctx.superstep == 0 and vid == 0:
                for dst in (1, 2, 3):
                    ctx.send(dst, (0, dst * 10))

        def master(ctx):
            if ctx.superstep == 1:
                seen["view"] = {
                    dst: list(msgs) for dst, msgs in ctx.outbox_view().items()
                }
            if ctx.superstep == 2:
                ctx.halt()

        PregelEngine(g, vertex, master, num_workers=2, scheduling="frontier").run()
        assert seen["view"] == {1: [(0, 10)], 2: [(0, 20)], 3: [(0, 30)]}


class TestAlgorithmParity:
    """Frontier scheduling is bit-identical to the dense scan — outputs and
    the whole metered ledger — for all six algorithms."""

    @pytest.mark.parametrize("algorithm", list(ALGORITHMS))
    def test_generated_parity(self, algorithm):
        key = applicable_graphs(algorithm)[0]
        graph = load_graph(key, SCALE)
        compiled = compile_algorithm(algorithm, emit_java=False)
        args = default_args(algorithm, graph)
        dense = compiled.program.run(graph, args, scheduling="dense")
        frontier = compiled.program.run(graph, args, scheduling="frontier")
        assert frontier.outputs == dense.outputs
        assert frontier.metrics.parity_key() == dense.metrics.parity_key()

    @pytest.mark.parametrize("algorithm", sorted(MANUAL_PROGRAMS))
    def test_manual_parity(self, algorithm):
        key = applicable_graphs(algorithm)[0]
        graph = load_graph(key, SCALE)
        program = MANUAL_PROGRAMS[algorithm]
        args = default_args(algorithm, graph)
        dense = program.run(graph, args, scheduling="dense")
        frontier = program.run(graph, args, scheduling="frontier")
        assert frontier.outputs == dense.outputs
        assert frontier.metrics.parity_key() == dense.metrics.parity_key()

    def test_parity_with_combiners(self):
        graph = load_graph("twitter", SCALE)
        compiled = compile_algorithm("pagerank", emit_java=False)
        args = default_args("pagerank", graph)
        dense = compiled.program.run(graph, args, use_combiners=True, scheduling="dense")
        frontier = compiled.program.run(
            graph, args, use_combiners=True, scheduling="frontier"
        )
        assert frontier.outputs == dense.outputs
        assert frontier.metrics.parity_key() == dense.metrics.parity_key()

    def test_parity_with_voting_sparse_supersteps(self):
        # manual SSSP votes to halt; force the sparse path with a permissive
        # threshold so both regimes are actually exercised
        graph = load_graph("twitter", SCALE)
        args = default_args("sssp", graph)
        sssp = MANUAL_PROGRAMS["sssp"]
        dense = sssp.run(graph, args, scheduling="dense")
        frontier = sssp.run(graph, args, scheduling="frontier", frontier_threshold=1.0)
        assert frontier.outputs == dense.outputs
        assert frontier.metrics.parity_key() == dense.metrics.parity_key()


class TestFaultRecovery:
    """Frontier state must survive checkpoint/restore: a frontier-scheduled
    run that crashes and recovers stays bit-identical to the dense
    failure-free baseline, under both recovery strategies."""

    @pytest.mark.parametrize("recovery", ["rollback", "confined"])
    def test_recovered_run_matches_dense_baseline(self, recovery):
        graph = load_graph("twitter", SCALE)
        args = default_args("sssp", graph)
        sssp = MANUAL_PROGRAMS["sssp"]
        dense = sssp.run(graph, args, scheduling="dense")
        plan = FaultPlan(
            checkpoint_every=2,
            crashes=(CrashEvent(worker=1, superstep=3),),
            recovery=recovery,
        )
        faulted = sssp.run(
            graph,
            args,
            scheduling="frontier",
            frontier_threshold=1.0,
            ft=FaultTolerance(plan),
        )
        assert faulted.metrics.faults_injected == 1
        assert faulted.outputs == dense.outputs
        assert faulted.metrics.parity_key() == dense.metrics.parity_key()

    @pytest.mark.parametrize("recovery", ["rollback", "confined"])
    def test_recovered_bfs_levels_match(self, recovery):
        # the pure frontier workload: sparse supersteps on both sides of the
        # crash, checkpoint taken mid-traversal
        n = 64
        dense = ManualBFS().run(line_graph(n), {"root": 0}, scheduling="dense")
        plan = FaultPlan(
            checkpoint_every=3,
            crashes=(CrashEvent(worker=2, superstep=10),),
            recovery=recovery,
        )
        faulted = ManualBFS().run(
            line_graph(n),
            {"root": 0},
            scheduling="frontier",
            frontier_threshold=1.0,
            ft=FaultTolerance(plan),
        )
        assert faulted.metrics.faults_injected == 1
        assert faulted.outputs == dense.outputs
        assert faulted.metrics.parity_key() == dense.metrics.parity_key()

    def test_checkpoint_carries_frontier_and_restore_rebuilds_it(self):
        # white-box: a checkpoint taken in the sparse regime records the live
        # frontier; a rollback restore revives it, a confined restore forces
        # a recompute from the voted bitmap
        n = 32
        level = [-1] * n
        captured = {}

        def master(ctx):
            if ctx.superstep == 5:
                captured["state"] = ctx.checkpoint_state()
            if ctx.superstep == 8:
                ctx.halt()

        engine = PregelEngine(
            line_graph(n),
            bfs_vertex(level),
            master,
            use_voting=True,
            scheduling="frontier",
            frontier_threshold=1.0,
        )
        engine.run()
        state = captured["state"]
        assert state["frontier"]  # sparse regime: the frontier was live

        level2 = [-1] * n
        twin = PregelEngine(
            line_graph(n),
            bfs_vertex(level2),
            use_voting=True,
            scheduling="frontier",
            frontier_threshold=1.0,
        )
        twin.restore_state(state)
        assert twin._frontier == state["frontier"]
        assert not twin._frontier_dirty
        assert twin.outbox_view() == state["outbox"]

        twin.restore_state(state, vertices=[0, 1])
        assert twin._frontier_dirty  # partition rewound: frontier recomputed

    def test_dense_checkpoint_restores_into_frontier_engine(self):
        # a checkpoint written by a dense engine has frontier=None; a
        # frontier engine restoring it must fall back to a bitmap recompute
        n = 32
        level = [-1] * n
        captured = {}

        def master(ctx):
            if ctx.superstep == 5:
                captured["state"] = ctx.checkpoint_state()
            if ctx.superstep == 8:
                ctx.halt()

        dense = PregelEngine(
            line_graph(n),
            bfs_vertex(level),
            master,
            use_voting=True,
            scheduling="dense",
        )
        dense.run()
        assert captured["state"]["frontier"] is None

        level2 = [-1] * n
        twin = PregelEngine(
            line_graph(n),
            bfs_vertex(level2),
            use_voting=True,
            scheduling="frontier",
            frontier_threshold=1.0,
        )
        twin.restore_state(captured["state"])
        assert twin._frontier_dirty


class TestTraceParity:
    """The observability acceptance property, from the scheduler's side: the
    deterministic projection of a traced run's event stream (timestamps and
    ``info`` excluded) is *byte-identical* across frontier and dense
    scheduling — per-superstep message/byte deltas, per-worker send counts,
    halt votes, all of it."""

    def _traced(self, n: int, **opts):
        from repro.obs import Tracer

        level = [-1] * n
        tracer = Tracer()
        PregelEngine(
            line_graph(n),
            bfs_vertex(level),
            use_voting=True,
            message_size=lambda m: 0,
            tracer=tracer,
            **opts,
        ).run()
        return level, tracer

    def test_bfs_trace_streams_identical(self):
        from repro.obs import deterministic_jsonl

        dense_level, dense = self._traced(64, scheduling="dense")
        level, frontier = self._traced(
            64, scheduling="frontier", frontier_threshold=1.0
        )
        assert level == dense_level
        assert deterministic_jsonl(frontier.events) == deterministic_jsonl(dense.events)
        # the streams came from genuinely different execution regimes
        modes = {e.info["mode"] for e in frontier.events if e.name == "superstep"}
        assert "sparse" in modes
        assert all(
            e.info["mode"] == "dense" for e in dense.events if e.name == "superstep"
        )

    def test_compiled_trace_streams_identical_with_combiners(self):
        from repro.obs import Tracer, deterministic_jsonl

        graph = load_graph("twitter", SCALE)
        compiled = compile_algorithm("pagerank", emit_java=False)
        args = default_args("pagerank", graph)
        streams = {}
        for scheduling in ("dense", "frontier"):
            tracer = Tracer()
            compiled.program.run(
                graph,
                args,
                use_combiners=True,
                scheduling=scheduling,
                tracer=tracer,
            )
            streams[scheduling] = deterministic_jsonl(tracer.events)
        assert streams["frontier"] == streams["dense"]
