"""Memory-pressure robustness (repro.pregel.mem): per-worker byte budgets,
credit-based backpressure, spill-to-disk, superstep splitting, and graceful
out-of-memory degradation.

The load-bearing invariant mirrors the transport's: the memory machinery
must change *cost*, never *results*.  Outputs and ``parity_key()`` are
bit-identical under any budget the run can complete in — including budgets
tight enough to force spilling, parking, and splitting — for every
algorithm, both schedulers, and in composition with net faults, crash
recovery, and supervision.  Only an irreducible allocation (one vertex's
materialized inbox, a combiner table, the checkpoint window) may end the
run, and then as structured ``halt_reason="out_of_memory"`` degradation,
never an exception."""

import glob
import os
import tempfile

import pytest

from repro.algorithms.manual import MANUAL_PROGRAMS, ManualBFS
from repro.bench.harness import default_args
from repro.graphgen import skewed
from repro.graphgen.registry import applicable_graphs, load_graph
from repro.pregel import Graph
from repro.pregel.ft import CrashEvent, FaultPlan, FaultTolerance
from repro.pregel.mem import (
    MemoryExhausted,
    MemoryManager,
    MemPlan,
    parse_mem_budget,
)
from repro.pregel.net import NetFaultPlan, SimulatedTransport
from repro.pregel.supervisor import Supervisor, SupervisorPlan

SCALE = 0.25
WORKERS = 4

#: the transport suite's hostile mix, reused for composition tests
MIXED = dict(drop_rate=0.15, dup_rate=0.1, reorder_rate=0.15, corrupt_rate=0.05, seed=13)

ALL_PROGRAMS = dict(MANUAL_PROGRAMS) | {"bfs": ManualBFS()}


def _graph_for(algorithm: str) -> Graph:
    name = applicable_graphs(algorithm)[0] if algorithm != "bfs" else "twitter"
    return load_graph(name, SCALE)


def _workload(algorithm: str):
    program = ALL_PROGRAMS[algorithm]
    graph = _graph_for(algorithm)
    args = default_args(algorithm, graph)
    return program, graph, args


def _assert_budget_run_identical(program, graph, args, budget, **opts):
    """A budgeted run must be bit-identical to the unlimited baseline."""
    baseline = program.run(graph, args, num_workers=WORKERS, **opts)
    mem = MemoryManager(MemPlan(budget_bytes=budget))
    run = program.run(graph, args, num_workers=WORKERS, mem=mem, **opts)
    assert run.outputs == baseline.outputs
    assert run.metrics.parity_key() == baseline.metrics.parity_key()
    return baseline, run


def _observed_peak(program, graph, args, **opts) -> int:
    """Per-worker peak under an effectively-unlimited (but metered) budget."""
    mem = MemoryManager(MemPlan(budget_bytes=1 << 30))
    run = program.run(graph, args, num_workers=WORKERS, mem=mem, **opts)
    return run.metrics.mem_peak_bytes


class TestPlanParsing:
    def test_single_budget(self):
        plan = parse_mem_budget(["65536"])
        assert plan.budget_bytes == 65536 and plan.limited

    @pytest.mark.parametrize(
        "spec,expected", [("64k", 64 << 10), ("2m", 2 << 20), ("1g", 1 << 30)]
    )
    def test_suffixes(self, spec, expected):
        assert parse_mem_budget([spec]).budget_bytes == expected

    def test_targeted_worker(self):
        plan = parse_mem_budget(["64k", "4096@1"])
        assert plan.budget_bytes == 64 << 10
        assert plan.worker_budgets == ((1, 4096),)

    def test_empty_is_unlimited(self):
        assert not parse_mem_budget([]).limited

    @pytest.mark.parametrize(
        "bad",
        ["banana", "0", "-5", "64k@x", "@2", "64q"],
    )
    def test_rejects_garbage(self, bad):
        with pytest.raises(ValueError):
            parse_mem_budget([bad])

    def test_rejects_duplicate_global(self):
        with pytest.raises(ValueError):
            parse_mem_budget(["64k", "32k"])

    def test_rejects_duplicate_worker(self):
        with pytest.raises(ValueError):
            parse_mem_budget(["4096@1", "8192@1"])

    def test_plan_validation(self):
        with pytest.raises(ValueError):
            MemPlan(budget_bytes=-1)
        with pytest.raises(ValueError):
            MemPlan(spill_watermark=0.0)
        with pytest.raises(ValueError):
            MemPlan(worker_budgets=((0, 0),))
        with pytest.raises(ValueError):
            MemPlan(checkpoint_window_bytes=0)

    def test_budget_targeting_missing_worker_rejected_at_attach(self):
        program, graph, args = _workload("pagerank")
        mem = MemoryManager(MemPlan(worker_budgets=((WORKERS + 3, 4096),)))
        with pytest.raises(ValueError):
            program.run(graph, args, num_workers=WORKERS, mem=mem)

    def test_manager_drives_exactly_one_run(self):
        program, graph, args = _workload("avg_teen_cnt")
        mem = MemoryManager(MemPlan(budget_bytes=1 << 20))
        program.run(graph, args, num_workers=WORKERS, mem=mem)
        with pytest.raises(RuntimeError):
            program.run(graph, args, num_workers=WORKERS, mem=mem)


class TestUnlimitedFastPath:
    def test_no_manager_leaves_counters_zero(self):
        program, graph, args = _workload("pagerank")
        run = program.run(graph, args, num_workers=WORKERS)
        m = run.metrics
        assert m.spilled_bytes == m.spill_files == 0
        assert m.outbox_parks == m.superstep_splits == 0
        assert m.mem_peak_bytes == m.checkpoint_peak_bytes == 0

    def test_unlimited_plan_installs_nothing(self):
        program, graph, args = _workload("pagerank")
        baseline = program.run(graph, args, num_workers=WORKERS)
        mem = MemoryManager(MemPlan())  # no budget: metering stays off
        run = program.run(graph, args, num_workers=WORKERS, mem=mem)
        assert run.outputs == baseline.outputs
        assert run.metrics.parity_key() == baseline.metrics.parity_key()
        assert run.metrics.mem_peak_bytes == 0


class TestParityUnderPressure:
    @pytest.mark.parametrize("algorithm", sorted(ALL_PROGRAMS))
    @pytest.mark.parametrize("scheduling", ("dense", "frontier"))
    def test_tight_budget_bit_identical(self, algorithm, scheduling):
        """Quarter-of-peak budgets force spills/splits on every message-heavy
        workload; outputs and parity must not move."""
        program, graph, args = _workload(algorithm)
        peak = _observed_peak(program, graph, args, scheduling=scheduling)
        tight = max(1024, peak // 4)
        _, run = _assert_budget_run_identical(
            program, graph, args, tight, scheduling=scheduling
        )
        if peak > 4096:
            # Message-heavy workloads must actually have exercised the
            # machinery, not completed trivially under the tight budget.
            assert run.metrics.spilled_bytes > 0
            assert run.metrics.superstep_splits > 0

    def test_targeted_single_worker_budget(self):
        """A budget pinned to one worker pressures only that worker; parity
        still holds (the BYTES@W injection form)."""
        program, graph, args = _workload("pagerank")
        baseline = program.run(graph, args, num_workers=WORKERS)
        mem = MemoryManager(MemPlan(worker_budgets=((2, 50_000),)))
        run = program.run(graph, args, num_workers=WORKERS, mem=mem)
        assert run.outputs == baseline.outputs
        assert run.metrics.parity_key() == baseline.metrics.parity_key()
        assert run.metrics.spilled_bytes > 0

    def test_minimum_completing_budget(self):
        """Binary-search the smallest budget PageRank completes under: it
        must be far below the unlimited peak (spilling works), and the run
        at the minimum must still be bit-identical."""
        program, graph, args = _workload("pagerank")
        baseline = program.run(graph, args, num_workers=WORKERS)
        peak = _observed_peak(program, graph, args)

        def completes(budget: int):
            mem = MemoryManager(MemPlan(budget_bytes=budget))
            run = program.run(graph, args, num_workers=WORKERS, mem=mem)
            return run if run.metrics.halt_reason != "out_of_memory" else None

        lo, hi = 1, peak
        while lo < hi:
            mid = (lo + hi) // 2
            if completes(mid):
                hi = mid
            else:
                lo = mid + 1
        minimum = hi
        run = completes(minimum)
        assert run is not None
        assert run.outputs == baseline.outputs
        assert run.metrics.parity_key() == baseline.metrics.parity_key()
        assert run.metrics.spilled_bytes > 0
        assert minimum < peak // 2, (
            f"minimum completing budget {minimum} should be well under the "
            f"unlimited peak {peak}"
        )
        if minimum > 1:
            assert completes(minimum - 1) is None


class TestComposition:
    def test_with_net_faults(self):
        program, graph, args = _workload("pagerank")
        baseline = program.run(graph, args, num_workers=WORKERS)
        tight = _observed_peak(program, graph, args) // 3
        mem = MemoryManager(MemPlan(budget_bytes=tight))
        run = program.run(
            graph,
            args,
            num_workers=WORKERS,
            mem=mem,
            transport=SimulatedTransport(NetFaultPlan(**MIXED)),
        )
        assert run.outputs == baseline.outputs
        assert run.metrics.parity_key() == baseline.metrics.parity_key()
        assert run.metrics.spilled_bytes > 0
        assert run.metrics.messages_dropped > 0  # faults really ran

    @pytest.mark.parametrize("recovery", ("rollback", "confined"))
    def test_with_crash_recovery(self, recovery):
        program, graph, args = _workload("pagerank")
        baseline = program.run(graph, args, num_workers=WORKERS)
        tight = _observed_peak(program, graph, args) // 3
        mem = MemoryManager(MemPlan(budget_bytes=tight))
        run = program.run(
            graph,
            args,
            num_workers=WORKERS,
            mem=mem,
            ft=FaultTolerance(
                FaultPlan(
                    checkpoint_every=2,
                    recovery=recovery,
                    crashes=(CrashEvent(worker=1, superstep=3),),
                )
            ),
        )
        assert run.metrics.faults_injected == 1
        assert run.outputs == baseline.outputs
        assert run.metrics.parity_key() == baseline.metrics.parity_key()
        assert run.metrics.spilled_bytes > 0

    def test_streamed_checkpoints_meter_peak(self):
        """Under a budget, checkpoints stream through a bounded window
        instead of one monolithic pickle; the window peak is metered."""
        program, graph, args = _workload("pagerank")
        mem = MemoryManager(MemPlan(budget_bytes=1 << 30))
        run = program.run(
            graph,
            args,
            num_workers=WORKERS,
            mem=mem,
            ft=FaultTolerance(FaultPlan(checkpoint_every=2)),
        )
        assert run.metrics.checkpoint_peak_bytes > 0

    def test_full_stack(self):
        """Budget + net faults + crash + supervisor at once: the paper's
        whole robustness story composes without breaking parity."""
        program, graph, args = _workload("sssp")
        baseline = program.run(graph, args, num_workers=WORKERS)
        tight = _observed_peak(program, graph, args) // 3
        mem = MemoryManager(MemPlan(budget_bytes=tight))
        run = program.run(
            graph,
            args,
            num_workers=WORKERS,
            mem=mem,
            transport=SimulatedTransport(NetFaultPlan(**MIXED)),
            ft=FaultTolerance(
                FaultPlan(checkpoint_every=2, crashes=(CrashEvent(0, 2),))
            ),
            supervisor=Supervisor(SupervisorPlan()),
        )
        assert run.outputs == baseline.outputs
        assert run.metrics.parity_key() == baseline.metrics.parity_key()


class TestOutOfMemory:
    def test_unsatisfiable_budget_degrades(self):
        """A budget below one vertex's inbox ends the run structurally."""
        program, graph, args = _workload("pagerank")
        mem = MemoryManager(MemPlan(budget_bytes=256))
        run = program.run(graph, args, num_workers=WORKERS, mem=mem)
        assert run.metrics.halt_reason == "out_of_memory"
        report = mem.report()
        assert report.oom is not None
        assert report.oom["phase"] in ("vertex", "combine", "checkpoint")
        assert report.oom["needed_bytes"] > report.oom["budget_bytes"] == 256
        d = report.to_dict()
        assert d["oom"]["worker"] == report.oom["worker"]
        assert "OOM" in report.summary()

    def test_oom_escalates_to_supervisor(self):
        program, graph, args = _workload("pagerank")
        mem = MemoryManager(MemPlan(budget_bytes=256))
        supervisor = Supervisor(SupervisorPlan())
        run = program.run(
            graph,
            args,
            num_workers=WORKERS,
            mem=mem,
            supervisor=supervisor,
            ft=FaultTolerance(FaultPlan(checkpoint_every=2)),
        )
        assert run.metrics.halt_reason == "out_of_memory"
        report = supervisor.report()
        assert report["halt_reason"] == "out_of_memory"
        assert report["degraded"]
        assert report["oom"]["worker"] == mem.report().oom["worker"]

    def test_largest_inbox_is_the_satisfiability_floor(self):
        """On the skewed graph the hub's inbox is the irreducible allocation:
        a budget under it OOMs, a budget with room over it completes."""
        hub_graph = skewed(400, 6, seed=5)
        from repro.graphgen.generators import attach_standard_props

        attach_standard_props(hub_graph)
        program = MANUAL_PROGRAMS["pagerank"]
        args = default_args("pagerank", hub_graph)
        baseline = program.run(hub_graph, args, num_workers=WORKERS)
        probe = MemoryManager(MemPlan(budget_bytes=1 << 30))
        program.run(hub_graph, args, num_workers=WORKERS, mem=probe)
        floor = probe.report().largest_vertex_inbox_bytes
        assert floor > 0
        mem = MemoryManager(MemPlan(budget_bytes=max(1, floor // 2)))
        run = program.run(hub_graph, args, num_workers=WORKERS, mem=mem)
        assert run.metrics.halt_reason == "out_of_memory"
        mem = MemoryManager(MemPlan(budget_bytes=2 * floor))
        run = program.run(hub_graph, args, num_workers=WORKERS, mem=mem)
        assert run.metrics.halt_reason != "out_of_memory"
        assert run.outputs == baseline.outputs
        assert run.metrics.parity_key() == baseline.metrics.parity_key()

    def test_memory_exhausted_never_escapes_run(self):
        program, graph, args = _workload("pagerank")
        mem = MemoryManager(MemPlan(budget_bytes=64))
        try:
            run = program.run(graph, args, num_workers=WORKERS, mem=mem)
        except MemoryExhausted:  # pragma: no cover - the bug being tested
            pytest.fail("MemoryExhausted escaped PregelEngine.run()")
        assert run.metrics.halt_reason == "out_of_memory"


class TestSpillHygiene:
    def _leftovers(self, parent) -> list[str]:
        return glob.glob(os.path.join(str(parent), "gm-pregel-mem-*"))

    def test_spill_dir_cleaned_after_normal_run(self, tmp_path):
        program, graph, args = _workload("pagerank")
        tight = _observed_peak(program, graph, args) // 3
        mem = MemoryManager(MemPlan(budget_bytes=tight, spill_dir=str(tmp_path)))
        run = program.run(graph, args, num_workers=WORKERS, mem=mem)
        assert run.metrics.spill_files > 0
        assert self._leftovers(tmp_path) == []

    def test_spill_dir_cleaned_after_oom(self, tmp_path):
        program, graph, args = _workload("pagerank")
        mem = MemoryManager(MemPlan(budget_bytes=256, spill_dir=str(tmp_path)))
        run = program.run(graph, args, num_workers=WORKERS, mem=mem)
        assert run.metrics.halt_reason == "out_of_memory"
        assert self._leftovers(tmp_path) == []

    def test_spill_dir_cleaned_after_crash_recovery(self, tmp_path):
        program, graph, args = _workload("pagerank")
        tight = _observed_peak(program, graph, args) // 3
        mem = MemoryManager(MemPlan(budget_bytes=tight, spill_dir=str(tmp_path)))
        run = program.run(
            graph,
            args,
            num_workers=WORKERS,
            mem=mem,
            ft=FaultTolerance(
                FaultPlan(checkpoint_every=2, crashes=(CrashEvent(1, 3),))
            ),
        )
        assert run.metrics.faults_injected == 1
        assert self._leftovers(tmp_path) == []

    def test_system_tempdir_not_littered(self):
        before = set(self._leftovers(tempfile.gettempdir()))
        program, graph, args = _workload("conductance")
        mem = MemoryManager(MemPlan(budget_bytes=4_000))
        program.run(graph, args, num_workers=WORKERS, mem=mem)
        assert set(self._leftovers(tempfile.gettempdir())) == before


class TestObservability:
    def test_budgeted_trace_projection_matches_unlimited(self):
        """mem.* events are info-only: the deterministic projection of a
        budgeted traced run equals the unlimited one's."""
        from repro.obs import Tracer
        from repro.obs.tracer import deterministic_events

        program, graph, args = _workload("pagerank")
        t_base = Tracer()
        program.run(graph, args, num_workers=WORKERS, tracer=t_base)
        t_mem = Tracer()
        tight = _observed_peak(program, graph, args) // 3
        mem = MemoryManager(MemPlan(budget_bytes=tight))
        run = program.run(graph, args, num_workers=WORKERS, tracer=t_mem, mem=mem)
        assert run.metrics.spilled_bytes > 0
        assert deterministic_events(t_mem.events) == deterministic_events(
            t_base.events
        )
        names = {e.name for e in t_mem.events}
        assert {"mem.spill", "mem.split"} <= names

    def test_summary_lines_mention_memory(self):
        program, graph, args = _workload("pagerank")
        mem = MemoryManager(MemPlan(budget_bytes=_observed_peak(program, graph, args) // 3))
        run = program.run(graph, args, num_workers=WORKERS, mem=mem)
        assert "mem: peak=" in run.metrics.summary()
        assert mem.report().summary().startswith("memory: budget=")


class TestChaosMemAxis:
    def test_drawn_budget_cases_hold_parity(self):
        from repro.bench.chaos import draw_case, run_case

        seed = next(
            s for s in range(64) if draw_case(s).mem_budget is not None
        )
        result = run_case(draw_case(seed), scale=0.125)
        assert result.ok, result.violations
