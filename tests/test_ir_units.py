"""Unit tests for the Pregel IR containers and the merge-pass internals."""

import pytest

from repro.lang import types as ty
from repro.lang.ast import BinOp
from repro.pregel.globalmap import GlobalOp
from repro.pregelir.ir import (
    Bin,
    Field,
    GlobalGet,
    Lit,
    MAssign,
    MBranch,
    MessageLayout,
    MJump,
    MLabel,
    MsgField,
    MVPhase,
    MyId,
    type_bytes,
    VertexPhase,
    VFieldAssign,
    VFieldReduce,
    VGlobalPut,
    VIf,
    VMsgLoop,
    VSendNbrs,
    VSendTo,
)
from repro.translate.merge import (
    _find_innermost_loops,
    guarded_compute,
    phase_field_reads,
    phase_field_writes,
    phase_global_puts,
    phase_global_reads,
)


class TestMessageLayout:
    def test_payload_bytes_by_type(self):
        layout = MessageLayout(0, "t")
        layout.fields = [("f0", ty.INT), ("f1", ty.DOUBLE), ("f2", ty.BOOL)]
        assert layout.payload_bytes(tagged=False) == 4 + 8 + 1
        assert layout.payload_bytes(tagged=True) == 14

    def test_type_bytes(self):
        assert type_bytes(ty.INT) == 4
        assert type_bytes(ty.LONG) == 8
        assert type_bytes(ty.FLOAT) == 4
        assert type_bytes(ty.DOUBLE) == 8
        assert type_bytes(ty.BOOL) == 1
        assert type_bytes(ty.NODE) == 4

    def test_property_type_rejected(self):
        with pytest.raises(ValueError):
            type_bytes(ty.NodePropType(ty.INT))


class TestVertexPhase:
    def make(self):
        phase = VertexPhase(0, "test")
        phase.receive = [
            VMsgLoop(2, [VFieldReduce("acc", GlobalOp.SUM, MsgField(0))])
        ]
        phase.compute = [
            VIf(
                Bin(BinOp.GT, Field("deg"), Lit(0)),
                [VSendNbrs(1, [Field("val")], "out")],
                [VSendTo(MyId(), 3, [])],
            ),
            VGlobalPut("total", GlobalOp.SUM, Field("val")),
        ]
        return phase

    def test_sent_tags_found_in_branches(self):
        assert self.make().sent_tags() == {1, 3}

    def test_received_tags(self):
        assert self.make().received_tags() == {2}

    def test_is_empty(self):
        assert VertexPhase(0, "x").is_empty()
        assert not self.make().is_empty()


class TestPhaseAnalysis:
    def test_global_reads_include_filters(self):
        phase = VertexPhase(0, "x")
        phase.filter = Bin(BinOp.LT, Field("a"), GlobalGet("K"))
        phase.compute = [VFieldAssign("a", GlobalGet("N"))]
        assert phase_global_reads(phase) == {"K", "N"}

    def test_global_puts_in_receive(self):
        phase = VertexPhase(0, "x")
        phase.receive = [VMsgLoop(0, [VGlobalPut("fin", GlobalOp.AND, Lit(False))])]
        assert phase_global_puts(phase) == {"fin"}

    def test_field_reads_and_writes(self):
        phase = VertexPhase(0, "x")
        phase.compute = [
            VFieldAssign("a", Bin(BinOp.ADD, Field("b"), Lit(1))),
            VFieldReduce("c", GlobalOp.MIN, Field("a")),
        ]
        assert phase_field_writes(phase) == {"a", "c"}
        assert {"a", "b"} <= phase_field_reads(phase)

    def test_guarded_compute_wraps_filter(self):
        phase = VertexPhase(0, "x")
        phase.filter = Bin(BinOp.GT, Field("a"), Lit(0))
        phase.compute = [VFieldAssign("a", Lit(1))]
        (wrapped,) = guarded_compute(phase)
        assert isinstance(wrapped, VIf)

    def test_guarded_compute_without_filter(self):
        phase = VertexPhase(0, "x")
        phase.compute = [VFieldAssign("a", Lit(1))]
        assert guarded_compute(phase) == phase.compute


class TestLoopShapeDetection:
    def test_do_while_shape(self):
        code = [
            MLabel("body"),
            MVPhase(0),
            MVPhase(1),
            MBranch(GlobalGet("c"), "body", "exit"),
            MLabel("exit"),
        ]
        loops = _find_innermost_loops(code)
        assert len(loops) == 1
        assert loops[0].head_branch is None
        assert loops[0].body_label == "body"
        assert loops[0].exit_label == "exit"

    def test_while_shape(self):
        code = [
            MLabel("head"),
            MBranch(GlobalGet("c"), "body", "exit"),
            MLabel("body"),
            MVPhase(0),
            MJump("head"),
            MLabel("exit"),
        ]
        loops = _find_innermost_loops(code)
        assert len(loops) == 1
        assert loops[0].head_branch == 1

    def test_non_straight_line_body_rejected(self):
        code = [
            MLabel("body"),
            MVPhase(0),
            MLabel("inner"),
            MVPhase(1),
            MBranch(GlobalGet("c"), "body", "exit"),
            MLabel("exit"),
        ]
        assert _find_innermost_loops(code) == []

    def test_forward_jump_is_not_a_loop(self):
        code = [
            MBranch(GlobalGet("c"), "later", "later"),
            MVPhase(0),
            MLabel("later"),
        ]
        assert _find_innermost_loops(code) == []


class TestDescribe:
    def test_ir_describe_mentions_phases_and_tags(self):
        from repro.compiler import compile_algorithm

        ir = compile_algorithm("bipartite_matching", emit_java=False).ir
        text = ir.describe()
        assert "message type(s)" in text
        assert "phase" in text
