"""String-level tests for the executable backend: expression rendering,
statement emission, and the master-instruction interpreter in isolation."""

import pytest

from repro.codegen.executable import (
    GeneratedMaster,
    _Emitter,
    emit_stmt,
    expr_py,
    gm_div,
)
from repro.lang.ast import BinOp, UnOp
from repro.lang import types as ty
from repro.pregel import Graph, PregelEngine
from repro.pregel.globalmap import GlobalOp
from repro.pregelir.ir import (
    Bin,
    Call,
    CastTo,
    Cond,
    Field,
    GlobalGet,
    Inf,
    Lit,
    Local,
    MAssign,
    MBranch,
    MFinalize,
    MHalt,
    MJump,
    MLabel,
    MsgField,
    MVPhase,
    MyId,
    Nil,
    ParamSpec,
    PregelIR,
    Un,
    VFieldReduce,
    VIf,
    VMsgLoop,
    VSendNbrs,
    VertexPhase,
)


class TestExprPy:
    def test_leaves(self):
        assert expr_py(Lit(3)) == "3"
        assert expr_py(Lit(True)) == "True"
        assert expr_py(Inf()) == "INF"
        assert expr_py(Inf(negative=True)) == "-INF"
        assert expr_py(Nil()) == "NIL"
        assert expr_py(Local("v")) == "L_v"
        assert expr_py(Field("dist")) == "F_dist[vid]"
        assert expr_py(GlobalGet("K")) == "B['K']"
        assert expr_py(MsgField(0)) == "_m[1]"
        assert expr_py(MyId()) == "vid"

    def test_operators(self):
        e = Bin(BinOp.AND, Lit(True), Bin(BinOp.LT, Field("a"), Lit(3)))
        assert expr_py(e) == "(True and (F_a[vid] < 3))"
        assert expr_py(Un(UnOp.NOT, Lit(False))) == "(not False)"
        assert expr_py(Un(UnOp.ABS, Lit(-2))) == "abs(-2)"

    def test_division_goes_through_gm_div(self):
        assert expr_py(Bin(BinOp.DIV, Lit(7), Lit(2))) == "gm_div(7, 2)"

    def test_conditional(self):
        e = Cond(Lit(True), Lit(1), Lit(2))
        assert expr_py(e) == "(1 if True else 2)"

    def test_casts(self):
        assert expr_py(CastTo(ty.INT, Lit(2.5))) == "int(2.5)"
        assert expr_py(CastTo(ty.DOUBLE, Lit(2))) == "float(2)"
        assert expr_py(CastTo(ty.BOOL, Lit(1))) == "bool(1)"

    def test_builtins(self):
        assert expr_py(Call("out_degree")) == "(OUT_OFF[vid + 1] - OUT_OFF[vid])"
        assert expr_py(Call("num_nodes")) == "NUM_NODES"
        assert expr_py(Call("edge_prop", ("len",))) == "EP_len[_ei]"

    def test_unknown_builtin(self):
        with pytest.raises(ValueError):
            expr_py(Call("bogus"))


class TestEmitStmt:
    def render(self, stmt) -> str:
        out = _Emitter()
        emit_stmt(out, stmt)
        return out.text()

    def test_min_reduce_uses_comparison(self):
        text = self.render(VFieldReduce("d", GlobalOp.MIN, MsgField(0)))
        assert "if _v < F_d[vid]: F_d[vid] = _v" in text

    def test_sends_guarded_against_empty_neighborhood(self):
        text = self.render(VSendNbrs(0, [Field("x")], "out"))
        assert "if OUT_OFF[vid] != OUT_OFF[vid + 1]:" in text

    def test_per_edge_send_loops_edges(self):
        text = self.render(
            VSendNbrs(0, [Bin(BinOp.ADD, Field("d"), Call("edge_prop", ("len",)))], "out")
        )
        assert "for _ei in range(OUT_OFF[vid], OUT_OFF[vid + 1]):" in text

    def test_in_direction_uses_in_nbrs_field(self):
        text = self.render(VSendNbrs(1, [Lit(1)], "in"))
        assert "F__in_nbrs[vid]" in text

    def test_edge_prop_on_in_send_rejected(self):
        with pytest.raises(ValueError):
            self.render(VSendNbrs(1, [Call("edge_prop", ("len",))], "in"))

    def test_msg_loop_filters_tag(self):
        text = self.render(VMsgLoop(3, [VFieldReduce("a", GlobalOp.SUM, MsgField(0))]))
        assert "if _m[0] == 3:" in text

    def test_empty_if_gets_pass(self):
        text = self.render(VIf(Lit(True), [], []))
        assert "pass" in text


class TestGmDiv:
    @pytest.mark.parametrize(
        "a,b,expected",
        [(7, 2, 3), (-7, 2, -3), (7, -2, -3), (-7, -2, 3), (6, 3, 2), (1, 2, 0)],
    )
    def test_int_truncation_toward_zero(self, a, b, expected):
        assert gm_div(a, b) == expected

    def test_float_division(self):
        assert gm_div(7.0, 2) == 3.5
        assert gm_div(7, 2.0) == 3.5

    def test_bool_is_not_int(self):
        # Python bools are ints but GM Bool never reaches division; document
        # that type(a) is int excludes bool:
        assert gm_div(True, 2.0) == 0.5


def _tiny_ir(master_code) -> PregelIR:
    phase = VertexPhase(0, "noop")
    return PregelIR(
        name="t",
        master_code=master_code,
        phases={0: phase},
        vertex_fields={},
        master_fields={"x": ty.INT, "y": ty.INT},
        messages={},
        params=[ParamSpec("G", ty.GRAPH, False)],
        return_type=ty.INT,
    )


def _run_master(code, supersteps=10):
    ir = _tiny_ir(code)
    master = GeneratedMaster(ir, {})
    graph = Graph.from_edges(1, [])
    engine = PregelEngine(graph, lambda c, v, m: None, master.compute)
    metrics = engine.run()
    return master, metrics


class TestGeneratedMaster:
    def test_assign_branch_halt(self):
        code = [
            MAssign("x", Lit(5)),
            MBranch(Bin(BinOp.GT, Field("x"), Lit(3)), "big", "small"),
            MLabel("big"),
            MHalt(Lit(1)),
            MLabel("small"),
            MHalt(Lit(0)),
        ]
        master, metrics = _run_master(code)
        assert metrics.result == 1
        assert metrics.supersteps == 0  # pure master work, no vertex phase

    def test_loop_with_phases_counts_supersteps(self):
        code = [
            MAssign("x", Lit(0)),
            MLabel("head"),
            MBranch(Bin(BinOp.LT, Field("x"), Lit(3)), "body", "exit"),
            MLabel("body"),
            MVPhase(0),
            MAssign("x", Bin(BinOp.ADD, Field("x"), Lit(1))),
            MJump("head"),
            MLabel("exit"),
            MHalt(Field("x")),
        ]
        master, metrics = _run_master(code)
        assert metrics.result == 3
        assert metrics.supersteps == 3  # one per MVPhase execution

    def test_finalize_skipped_without_aggregate(self):
        code = [
            MAssign("x", Lit(7)),
            MFinalize("x", GlobalOp.SUM),
            MHalt(Field("x")),
        ]
        _, metrics = _run_master(code)
        assert metrics.result == 7  # no vertex puts: finalize is a no-op

    def test_fall_off_end_halts(self):
        _, metrics = _run_master([MVPhase(0)])
        assert metrics.halt_reason == "master_halt"
        assert metrics.supersteps == 1

    def test_runaway_master_detected(self):
        code = [MLabel("spin"), MJump("spin")]
        ir = _tiny_ir(code)
        master = GeneratedMaster(ir, {})
        graph = Graph.from_edges(1, [])
        engine = PregelEngine(graph, lambda c, v, m: None, master.compute)
        with pytest.raises(RuntimeError, match="did not yield"):
            engine.run()

    def test_broadcasts_state_and_fields(self):
        code = [MAssign("x", Lit(9)), MVPhase(0), MHalt(None)]
        ir = _tiny_ir(code)
        master = GeneratedMaster(ir, {})
        graph = Graph.from_edges(1, [])
        seen = {}

        def vertex(ctx, vid, messages):
            seen.update(ctx.globals.broadcast)

        engine = PregelEngine(graph, vertex, master.compute)
        engine.run()
        assert seen["_state"] == 0
        assert seen["x"] == 9
