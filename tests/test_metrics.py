"""Metrics registry + bench telemetry: units, cross-backend parity, CLI.

The contracts under test:

* registry semantics — labeled instrument identity, log-bucketed
  histograms, snapshot/merge (counters sum, histograms bucket-sum, gauges
  max), the deterministic projection, Prometheus exposition;
* observational transparency — attaching a recording registry changes no
  run result: all six algorithms stay bit-identical on ``parity_key()``
  and outputs across sim/columnar/mp, metrics enabled or disabled;
* cross-backend determinism — the ``det`` families of a run's snapshot
  are identical across every backend (the registry twin of
  ``deterministic_events``);
* the telemetry pipeline — BENCH_*.json round-trip, noise-aware
  ``gm-pregel compare`` exit codes (0 clean / 1 regression / 2 malformed),
  and the ``gm-pregel metrics`` exporter.
"""

from __future__ import annotations

import copy
import json

import pytest

from repro.bench.harness import default_args
from repro.bench.telemetry import (
    SCHEMA_VERSION,
    TelemetryError,
    compare,
    graph_signature,
    hist_summary,
    load_bench,
    run_record,
    snapshot_histogram_summaries,
    validate,
    write_bench,
)
from repro.cli import main
from repro.compiler import compile_algorithm
from repro.graphgen.registry import load_graph
from repro.obs import (
    MetricsRegistry,
    NULL_REGISTRY,
    deterministic_snapshot,
    prometheus_text,
)
from repro.pregel.backend.mp import mp_available

ALGORITHMS = (
    "avg_teen_cnt",
    "pagerank",
    "conductance",
    "sssp",
    "bipartite_matching",
    "bc_approx",
)

needs_mp = pytest.mark.skipif(
    not mp_available(),
    reason="needs fork start-method and multiprocessing.shared_memory",
)


# ---------------------------------------------------------------------------
# Registry units
# ---------------------------------------------------------------------------


class TestRegistryUnits:
    def test_counter_identity_and_labels(self):
        reg = MetricsRegistry()
        a = reg.counter("x.total", route="a")
        b = reg.counter("x.total", route="b")
        assert a is not b
        assert reg.counter("x.total", route="a") is a
        a.inc()
        a.inc(4)
        b.inc(2)
        snap = reg.snapshot()
        series = snap["x.total"]["series"]
        assert [(r["labels"], r["value"]) for r in series] == [
            ({"route": "a"}, 5),
            ({"route": "b"}, 2),
        ]

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("x")

    def test_gauge_set_max(self):
        reg = MetricsRegistry()
        g = reg.gauge("peak")
        g.set_max(10)
        g.set_max(3)
        assert reg.snapshot()["peak"]["series"][0]["value"] == 10

    def test_histogram_log_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat")
        for v in (0.3, 0.6, 1.0, 1.5, 3.0, 0.0):
            h.observe(v)
        row = reg.snapshot()["lat"]["series"][0]
        assert row["count"] == 6
        assert row["sum"] == pytest.approx(6.4)
        assert row["min"] == 0.0 and row["max"] == 3.0
        # bounds are powers of two (plus the 0.0 underflow bucket); an
        # exact power of two files under its own bucket.
        assert row["buckets"] == [
            [0.0, 1],  # 0.0
            [0.5, 1],  # 0.3
            [1.0, 2],  # 0.6, 1.0 (exact power of two)
            [2.0, 1],  # 1.5
            [4.0, 1],  # 3.0
        ]

    def test_snapshot_reset(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        assert reg.snapshot(reset=True)["c"]["series"][0]["value"] == 3
        assert reg.snapshot() == {}

    def test_merge_snapshot(self):
        a = MetricsRegistry()
        a.counter("c", det=True).inc(3)
        a.gauge("g").set_max(5)
        a.histogram("h").observe(0.75)
        b = MetricsRegistry()
        b.counter("c", det=True).inc(4)
        b.gauge("g").set_max(9)
        b.histogram("h").observe(0.75)
        b.histogram("h").observe(100.0)
        a.merge_snapshot(b.snapshot())
        snap = a.snapshot()
        assert snap["c"]["series"][0]["value"] == 7  # counters sum
        assert snap["g"]["series"][0]["value"] == 9  # gauges max
        h = snap["h"]["series"][0]
        assert h["count"] == 3  # histograms bucket-sum
        assert h["min"] == 0.75 and h["max"] == 100.0
        assert [1.0, 2] in h["buckets"]  # 0.75 twice, merged bucket-wise
        assert snap["c"]["det"] is True

    def test_merge_preserves_round_trip(self):
        src = MetricsRegistry()
        src.histogram("h", phase="x").observe(0.1)
        src.histogram("h", phase="x").observe(2.0)
        snap = src.snapshot()
        dst = MetricsRegistry()
        dst.merge_snapshot(snap)
        assert dst.snapshot() == snap

    def test_deterministic_projection(self):
        reg = MetricsRegistry()
        reg.counter("msgs", det=True).inc(7)
        reg.counter("noise").inc(1)
        reg.histogram("work", det=True).observe(1.25)
        det = deterministic_snapshot(reg.snapshot())
        assert set(det) == {"msgs", "work"}
        # det histograms project to order-independent counts only
        assert det["work"]["series"][0] == {"labels": {}, "count": 1}

    def test_null_registry_is_inert(self):
        NULL_REGISTRY.counter("x").inc()
        NULL_REGISTRY.gauge("x").set_max(5)
        NULL_REGISTRY.histogram("x").observe(1.0)
        assert NULL_REGISTRY.enabled is False
        assert NULL_REGISTRY.snapshot() == {}

    def test_prometheus_exposition(self):
        reg = MetricsRegistry()
        reg.counter("pregel.messages", det=True, tag="0").inc(12)
        reg.histogram("step.seconds").observe(0.3)
        text = prometheus_text(reg.snapshot())
        assert "# TYPE pregel_messages counter" in text
        assert 'pregel_messages{tag="0"} 12' in text
        assert 'step_seconds_bucket{le="+Inf"} 1' in text
        assert "step_seconds_count 1" in text


# ---------------------------------------------------------------------------
# Cross-backend parity: metrics are observationally transparent
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def graph():
    return load_graph("twitter", 0.1)


@pytest.fixture(scope="module")
def programs():
    return {alg: compile_algorithm(alg, emit_java=False).program for alg in ALGORITHMS}


def _run(programs, graph, alg, backend, registry=None):
    return programs[alg].run(
        graph,
        default_args(alg, graph),
        backend=backend,
        metrics_registry=registry,
    )


class TestMeteredParityMatrix:
    """6 algorithms x {sim, columnar, mp} x {enabled, disabled}: the
    registry never changes results, and its det families agree across
    backends."""

    @pytest.mark.parametrize("alg", ALGORITHMS)
    def test_matrix(self, programs, graph, alg):
        oracle = _run(programs, graph, alg, "sim")  # no registry at all
        backends = ["sim", "columnar"] + (["mp"] if mp_available() else [])
        det_snaps = {}
        for backend in backends:
            plain = _run(programs, graph, alg, backend)
            registry = MetricsRegistry()
            metered = _run(programs, graph, alg, backend, registry)
            for run in (plain, metered):
                assert run.metrics.parity_key() == oracle.metrics.parity_key(), backend
                assert run.outputs == oracle.outputs, backend
                assert run.result == oracle.result, backend
            det_snaps[backend] = deterministic_snapshot(registry.snapshot())
        first = det_snaps[backends[0]]
        assert first, "det families must be populated"
        for backend in backends[1:]:
            assert det_snaps[backend] == first, backend

    def test_det_families_match_run_metrics(self, programs, graph):
        registry = MetricsRegistry()
        run = _run(programs, graph, "pagerank", "sim", registry)
        snap = registry.snapshot()

        def value(name):
            return snap[name]["series"][0]["value"]

        m = run.metrics
        assert value("pregel.supersteps") == m.supersteps
        assert value("pregel.messages") == m.messages
        assert value("pregel.message_bytes") == m.message_bytes
        assert value("pregel.net_messages") == m.net_messages
        assert value("pregel.net_bytes") == m.net_bytes
        runs = snap["pregel.runs"]["series"]
        assert [(r["labels"], r["value"]) for r in runs] == [
            ({"halt_reason": m.halt_reason}, 1)
        ]
        assert snap["pregel.superstep_seconds"]["series"][0]["count"] == m.supersteps

    def test_columnar_slab_counters(self, programs, graph):
        registry = MetricsRegistry()
        run = _run(programs, graph, "pagerank", "columnar", registry)
        snap = registry.snapshot()
        slab = snap["columnar.slab_records"]["series"][0]["value"]
        bulk = snap["columnar.bulk_records"]["series"][0]["value"]
        scalar = snap["columnar.scalar_records"]["series"][0]["value"]
        assert slab == bulk + scalar > 0
        assert run.metrics.vectorized_phases  # pagerank's fold vectorizes

    @needs_mp
    def test_mp_worker_families_merge_at_barrier(self, programs, graph):
        registry = MetricsRegistry()
        run = _run(programs, graph, "pagerank", "mp", registry)
        snap = registry.snapshot()
        route = snap["mp.worker_route_seconds"]["series"]
        workers = sorted(r["labels"]["worker"] for r in route)
        assert workers == ["0", "1", "2", "3"]
        for row in snap["mp.worker_step_seconds"]["series"]:
            assert row["count"] == run.metrics.supersteps

    @needs_mp
    @pytest.mark.parametrize("kind,cause", [("kill", "died"), ("hang", "timeout")])
    def test_mp_real_fault_families(self, programs, graph, kind, cause):
        from repro.pregel.ft import FaultPlan, FaultTolerance, RealFault

        registry = MetricsRegistry()
        run = programs["pagerank"].run(
            graph,
            default_args("pagerank", graph),
            backend="mp",
            num_workers=2,
            metrics_registry=registry,
            ft=FaultTolerance(FaultPlan(checkpoint_every=2)),
            real_faults=(RealFault(kind, 1, 1),),
            exchange_deadline=0.75 if kind == "hang" else 10.0,
        )
        assert run.metrics.restarts == 1
        snap = registry.snapshot()
        misses = snap["mp.exchange_deadline_misses"]["series"]
        assert [(row["labels"], row["value"]) for row in misses] == [
            ({"cause": cause}, 1)
        ]
        restarts = snap["supervisor.restarts"]["series"]
        assert [(row["labels"], row["value"]) for row in restarts] == [
            ({"backend": "mp"}, 1)
        ]


# ---------------------------------------------------------------------------
# Vectorizer decision telemetry (compile.vectorize)
# ---------------------------------------------------------------------------


class TestVectorizeTelemetry:
    def test_columnar_trace_carries_decisions(self, graph):
        from repro.obs import Tracer

        tracer = Tracer()
        compiled = compile_algorithm("pagerank", emit_java=False, tracer=tracer)
        compiled.program.run(
            graph,
            default_args("pagerank", graph),
            backend="columnar",
            tracer=tracer,
        )
        events = [e for e in tracer.events if e.name == "compile.vectorize"]
        assert events, "columnar runs must report per-phase vectorizer decisions"
        for e in events:
            assert e.det is None  # info-only: sim never runs the vectorizer
            assert set(e.info) == {"phase", "eligible", "reason", "tags"}
        assert any(e.info["eligible"] for e in events)
        for e in events:
            if not e.info["eligible"]:
                assert e.info["reason"] != "vectorized"

    def test_sim_trace_has_no_decisions(self, graph):
        from repro.obs import Tracer

        tracer = Tracer()
        compiled = compile_algorithm("pagerank", emit_java=False, tracer=tracer)
        compiled.program.run(
            graph, default_args("pagerank", graph), backend="sim", tracer=tracer
        )
        assert not [e for e in tracer.events if e.name == "compile.vectorize"]

    def test_summary_reports_vectorized_phases(self, programs, graph):
        run = _run(programs, graph, "pagerank", "columnar")
        assert run.metrics.vectorized_phases
        assert "vectorized=[" in run.metrics.summary()
        # the field is backend provenance, never part of the parity key
        assert "vectorized_phases" not in run.metrics.parity_key()


# ---------------------------------------------------------------------------
# mp profile: process identities + per-worker route timings
# ---------------------------------------------------------------------------


@needs_mp
class TestMpProfile:
    def test_profile_report_names_pids(self, programs, graph):
        from repro.obs import Tracer, profile_report, worker_profile

        tracer = Tracer()
        programs["pagerank"].run(
            graph, default_args("pagerank", graph), backend="mp", tracer=tracer
        )
        stats = worker_profile(tracer.events)
        assert len(stats) == 4
        assert all(s.pid is not None and s.pid > 0 for s in stats)
        assert len({s.pid for s in stats}) == 4  # four distinct processes
        assert any(s.route_seconds > 0 for s in stats)
        report = profile_report(tracer.events)
        assert "pid" in report and "route ms" in report
        assert f"pid {stats[0].pid}" in report or str(stats[0].pid) in report


# ---------------------------------------------------------------------------
# Telemetry documents + compare
# ---------------------------------------------------------------------------


def _doc(tmp_path, name, runs):
    path = write_bench(name, runs, out_dir=tmp_path)
    return path, load_bench(path)


class TestTelemetry:
    def test_round_trip_and_schema(self, tmp_path):
        runs = [
            run_record(
                "r1", backend="sim", workers=4, wall_seconds=[0.2, 0.21],
                counts={"messages": 10},
            )
        ]
        path, doc = _doc(tmp_path, "unit", runs)
        assert path.name == "BENCH_unit.json"
        assert doc["schema_version"] == SCHEMA_VERSION
        assert doc["meta"]["cpu_count"] >= 1
        assert "git_sha" in doc["meta"]
        validate(doc)  # idempotent

    def test_graph_signature_distinguishes_topology(self):
        a = load_graph("twitter", 0.05, 1)
        b = load_graph("twitter", 0.05, 2)
        sig_a, sig_b = graph_signature(a, "twitter"), graph_signature(b, "twitter")
        assert sig_a != sig_b
        assert sig_a == graph_signature(load_graph("twitter", 0.05, 1), "twitter")

    def test_hist_summary_percentiles(self):
        reg = MetricsRegistry()
        h = reg.histogram("h")
        for v in [0.4] * 98 + [100.0, 200.0]:
            h.observe(v)
        row = reg.snapshot()["h"]["series"][0]
        s = hist_summary(row)
        assert s["count"] == 100
        assert s["p50"] == 0.5  # log-bucket upper bound of 0.4
        assert s["p90"] == 0.5
        assert s["p99"] == 128.0  # bucket holding 100.0
        summaries = snapshot_histogram_summaries(reg.snapshot())
        assert summaries == {"h": s}

    def test_validate_rejects_malformed(self):
        with pytest.raises(TelemetryError):
            validate([])
        with pytest.raises(TelemetryError, match="schema_version"):
            validate({"schema_version": 99, "bench": "x", "runs": []})
        with pytest.raises(TelemetryError, match="missing 'runs'"):
            validate({"schema_version": SCHEMA_VERSION, "bench": "x"})
        with pytest.raises(TelemetryError, match="wall_seconds"):
            validate(
                {
                    "schema_version": SCHEMA_VERSION,
                    "bench": "x",
                    "runs": [{"name": "r", "backend": "sim", "counts": {}}],
                }
            )

    def test_compare_detects_20pct_slowdown(self, tmp_path):
        runs = [
            run_record(
                "pagerank@sim", backend="sim", workers=4,
                wall_seconds=[0.10, 0.12, 0.11], counts={"messages": 100},
            )
        ]
        _, baseline = _doc(tmp_path, "cmp", runs)
        current = copy.deepcopy(baseline)
        current["runs"][0]["wall_seconds"] = [
            s * 1.2 for s in current["runs"][0]["wall_seconds"]
        ]
        result = compare(baseline, current)
        assert not result.ok
        assert result.regressions[0].metric == "wall_seconds"
        # min-of-N: one slow outlier among fast samples is NOT a regression
        noisy = copy.deepcopy(baseline)
        noisy["runs"][0]["wall_seconds"] = [0.10, 0.50, 0.40]
        assert compare(baseline, noisy).ok

    def test_compare_counts_exact_and_thresholds(self, tmp_path):
        runs = [
            run_record(
                "r", backend="sim", workers=4, wall_seconds=[0.1],
                counts={"messages": 100, "message_bytes": 800},
            )
        ]
        _, baseline = _doc(tmp_path, "cnt", runs)
        drift = copy.deepcopy(baseline)
        drift["runs"][0]["counts"]["messages"] = 105
        assert not compare(baseline, drift, counts_only=True).ok
        assert compare(
            baseline, drift, counts_only=True, thresholds={"messages": 1.10}
        ).ok
        assert not compare(
            baseline, drift, counts_only=True, thresholds={"messages": 1.01}
        ).ok

    def test_compare_missing_run_is_regression(self, tmp_path):
        runs = [
            run_record("a", backend="sim", workers=4, wall_seconds=[0.1], counts={}),
            run_record("b", backend="sim", workers=4, wall_seconds=[0.1], counts={}),
        ]
        _, baseline = _doc(tmp_path, "mrun", runs)
        current = copy.deepcopy(baseline)
        current["runs"] = current["runs"][:1]
        result = compare(baseline, current)
        assert [i.metric for i in result.regressions] == ["presence"]


class TestCompareCli:
    def _write(self, tmp_path, name, doc):
        path = tmp_path / name
        path.write_text(json.dumps(doc))
        return str(path)

    def test_exit_codes(self, tmp_path, capsys):
        runs = [
            run_record(
                "r", backend="sim", workers=4,
                wall_seconds=[0.10, 0.11], counts={"messages": 9},
            )
        ]
        base_path = str(write_bench("cli", runs, out_dir=tmp_path))
        baseline = load_bench(base_path)

        same = self._write(tmp_path, "same.json", baseline)
        assert main(["compare", base_path, same]) == 0
        assert "no regressions" in capsys.readouterr().out

        slow = copy.deepcopy(baseline)
        slow["runs"][0]["wall_seconds"] = [s * 1.2 for s in slow["runs"][0]["wall_seconds"]]
        slow_path = self._write(tmp_path, "slow.json", slow)
        assert main(["compare", base_path, slow_path]) == 1
        assert "REGRESSION" in capsys.readouterr().out

        bad_path = tmp_path / "bad.json"
        bad_path.write_text("{not json")
        with pytest.raises(SystemExit) as exc:
            main(["compare", base_path, str(bad_path)])
        assert exc.value.code == 2

        missing = str(tmp_path / "nope.json")
        with pytest.raises(SystemExit) as exc:
            main(["compare", base_path, missing])
        assert exc.value.code == 2

    def test_threshold_flag_validation(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["compare", "a.json", "b.json", "--threshold", "messages"])
        assert exc.value.code == 2
        with pytest.raises(SystemExit) as exc:
            main(["compare", "a.json", "b.json", "--threshold", "messages=0.5"])
        assert exc.value.code == 2

    def test_counts_only_skips_wall(self, tmp_path, capsys):
        runs = [
            run_record(
                "r", backend="sim", workers=4, wall_seconds=[0.1], counts={"m": 5}
            )
        ]
        base_path = str(write_bench("co", runs, out_dir=tmp_path))
        slow = load_bench(base_path)
        slow["runs"][0]["wall_seconds"] = [10.0]
        slow_path = self._write(tmp_path, "slow.json", slow)
        assert main(["compare", base_path, slow_path, "--counts-only"]) == 0
        capsys.readouterr()


class TestMetricsCli:
    def test_json_and_prom_formats(self, capsys):
        from repro.algorithms.sources import source_path

        gm = str(source_path("pagerank"))
        args = ["--arg", "e=1e-9", "--arg", "d=0.85", "--arg", "max_iter=3",
                "--scale", "0.05"]
        assert main(["metrics", gm, *args]) == 0
        snap = json.loads(capsys.readouterr().out)
        assert snap["pregel.supersteps"]["det"] is True
        assert snap["pregel.supersteps"]["series"][0]["value"] > 0

        assert main(["metrics", gm, *args, "--format", "prom",
                     "--backend", "columnar"]) == 0
        text = capsys.readouterr().out
        assert "# TYPE pregel_messages counter" in text
        assert "# TYPE columnar_slab_records counter" in text
