"""Harness tests and the §5.2 parity claims: generated vs manual programs
must agree on messages, bytes, and (up to the startup phase) timesteps."""

import pytest

from repro.bench import (
    PAPER_TABLE2,
    count_loc,
    default_args,
    render_check_matrix,
    render_table,
    run_pair,
    table2_rows,
)
from repro.graphgen import load_graph


@pytest.fixture(scope="module")
def twitter():
    return load_graph("twitter", scale=0.2, seed=3)


@pytest.fixture(scope="module")
def bip():
    return load_graph("bipartite", scale=0.2, seed=3)


class TestParity:
    """The paper: 'The compiler-generated programs took the exact same number
    of timesteps and incurred the exact same network I/O as the manually
    coded Pregel programs.'  We reproduce message/byte equality exactly for
    PageRank, SSSP and AvgTeen; the timestep delta is the one-superstep
    initialization phase (documented in EXPERIMENTS.md)."""

    def test_pagerank_messages_and_bytes_equal(self, twitter):
        pair = run_pair("pagerank", twitter, "twitter")
        assert pair.generated.messages == pair.manual.messages
        assert pair.generated.message_bytes == pair.manual.message_bytes

    def test_pagerank_timesteps_within_startup(self, twitter):
        pair = run_pair("pagerank", twitter, "twitter")
        assert 0 <= pair.timestep_delta <= 1

    def test_sssp_messages_and_bytes_equal(self, twitter):
        pair = run_pair("sssp", twitter, "twitter")
        assert pair.generated.messages == pair.manual.messages
        assert pair.generated.message_bytes == pair.manual.message_bytes

    def test_sssp_timesteps_within_startup(self, twitter):
        pair = run_pair("sssp", twitter, "twitter")
        assert 0 <= pair.timestep_delta <= 1

    def test_avg_teen_exact_parity(self, twitter):
        pair = run_pair("avg_teen_cnt", twitter, "twitter")
        assert pair.generated.messages == pair.manual.messages
        assert pair.timestep_delta == 0

    def test_bipartite_same_result(self, bip):
        from repro.algorithms.manual import MANUAL_PROGRAMS
        from repro.compiler import compile_algorithm

        gen = compile_algorithm("bipartite_matching", emit_java=False).program.run(bip)
        man = MANUAL_PROGRAMS["bipartite_matching"].run(bip)
        assert gen.result == man.result

    def test_conductance_overhead_is_the_prologue(self, twitter):
        # generated needs the 2-superstep incoming-neighbors prologue plus the
        # per-edge id broadcast; the manual version avoids it by pushing.
        pair = run_pair("conductance", twitter, "twitter")
        assert pair.timestep_delta == 1
        assert pair.generated.messages > pair.manual.messages

    def test_normalized_runtime_in_paper_band(self, twitter):
        # the paper saw 0.92x..1.35x; interpretation overheads differ here but
        # the generated code must stay in the same performance class.
        pair = run_pair("pagerank", twitter, "twitter", repeats=3)
        assert pair.normalized_runtime is not None
        assert 0.5 <= pair.normalized_runtime <= 2.5


class TestHarness:
    def test_default_args_known_algorithms(self, twitter):
        assert "max_iter" in default_args("pagerank", twitter)
        assert default_args("bc_approx", twitter) == {"K": 4}

    def test_run_pair_without_manual_baseline(self, twitter):
        pair = run_pair("bc_approx", twitter, "twitter", args={"K": 1})
        assert pair.manual is None
        assert pair.normalized_runtime is None
        assert pair.generated.supersteps > 0

    def test_repeat_takes_best_wall_time(self, twitter):
        pair = run_pair("avg_teen_cnt", twitter, "twitter", repeats=3)
        assert pair.generated.wall_seconds > 0


class TestTable2:
    def test_rows_cover_all_algorithms(self):
        rows = table2_rows()
        assert len(rows) == 6

    def test_green_marl_is_an_order_of_magnitude_smaller(self):
        for row in table2_rows():
            assert row.generated_java >= 5 * row.green_marl, row.algorithm

    def test_our_gm_loc_close_to_paper(self):
        for row in table2_rows():
            assert row.green_marl <= row.paper_green_marl + 5, row.algorithm

    def test_bc_has_no_manual_gps(self):
        assert PAPER_TABLE2["bc_approx"][1] is None

    def test_count_loc_strips_comments(self):
        text = "// comment\n\ncode();\n/* block\nstill block */\nmore();\n"
        assert count_loc(text) == 2


class TestTableRendering:
    def test_render_table_alignment(self):
        out = render_table(["a", "bb"], [[1, 2.5], ["xyz", None]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "N/A" in out and "2.500" in out

    def test_check_matrix(self):
        out = render_check_matrix(
            ["Rule A", "Rule B"],
            ["alg1", "alg2"],
            {"alg1": {"Rule A": True}, "alg2": {"Rule B": True}},
        )
        assert "x" in out
        assert "Rule A" in out and "alg2" in out


class TestTable3:
    def test_matrix_matches_expectations(self):
        from repro.algorithms.sources import ALGORITHMS
        from repro.compiler import compile_algorithm

        marks = {
            name: compile_algorithm(name, emit_java=False).rule_row()
            for name in ALGORITHMS
        }
        # universal rows (the paper: "commonly applied to all algorithms")
        for name in ALGORITHMS:
            assert marks[name]["State Machine Const."]
            assert marks[name]["Global Object"]
            assert marks[name]["Message Class Gen."]
            assert marks[name]["State Merging"]
        # per-algorithm signatures
        assert marks["avg_teen_cnt"]["Flipping Edge"]
        assert marks["pagerank"]["Intra-Loop Merge"]
        assert marks["conductance"]["Incoming Neighbors"]
        assert marks["sssp"]["Edge Property"]
        assert marks["sssp"]["Random Access (Seq.)"]
        assert marks["bipartite_matching"]["Random Writing"]
        assert marks["bipartite_matching"]["Multiple Comm."]
        assert marks["bc_approx"]["BFS Traversal"]
        # and the negatives
        assert not marks["avg_teen_cnt"]["BFS Traversal"]
        assert not marks["pagerank"]["Random Writing"]
        assert not marks["sssp"]["Flipping Edge"]
