"""Fault-tolerance subsystem (repro.pregel.ft): checkpointing, deterministic
crash injection, and recovery.

The central property: a run with an injected worker crash, recovered from a
checkpoint — by full rollback or by GPS-style confined recovery — must be
*bit-identical* to a failure-free run in outputs, final result, supersteps,
message counts, and every other deterministic metric.  Asserted for all six
paper algorithms, generated and manual."""

import pytest

from repro.algorithms.manual import MANUAL_PROGRAMS
from repro.algorithms.sources import ALGORITHMS
from repro.bench.harness import default_args, fault_ablation
from repro.compiler import compile_algorithm
from repro.graphgen.registry import applicable_graphs, load_graph
from repro.pregel import Graph, PregelEngine
from repro.pregel.ft import (
    ColumnState,
    CrashEvent,
    FaultPlan,
    FaultTolerance,
    parse_crash,
)

SCALE = 0.25
WORKERS = 4


def _graph_for(algorithm: str) -> Graph:
    return load_graph(applicable_graphs(algorithm)[0], SCALE)


def _assert_recovered_run_identical(program, graph, args, *, recovery, checkpoint_every=2):
    baseline = program.run(graph, args, num_workers=WORKERS)
    supersteps = baseline.metrics.supersteps
    crash_step = max(1, supersteps - 1)
    plan = FaultPlan(
        checkpoint_every=checkpoint_every,
        crashes=(CrashEvent(worker=1, superstep=crash_step),),
        recovery=recovery,
    )
    run = program.run(graph, args, num_workers=WORKERS, ft=FaultTolerance(plan))
    assert run.metrics.faults_injected == 1
    assert run.metrics.checkpoints_taken >= 1
    assert run.metrics.checkpoint_bytes > 0
    assert run.outputs == baseline.outputs
    assert run.metrics.parity_key() == baseline.metrics.parity_key()
    return baseline, run


class TestRecoveryParity:
    """All six paper algorithms survive a crash bit-identically."""

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    @pytest.mark.parametrize("recovery", ("rollback", "confined"))
    def test_generated_program_recovers(self, algorithm, recovery):
        graph = _graph_for(algorithm)
        compiled = compile_algorithm(algorithm, emit_java=False)
        _assert_recovered_run_identical(
            compiled.program, graph, default_args(algorithm, graph), recovery=recovery
        )

    @pytest.mark.parametrize("algorithm", sorted(MANUAL_PROGRAMS))
    @pytest.mark.parametrize("recovery", ("rollback", "confined"))
    def test_manual_baseline_recovers(self, algorithm, recovery):
        graph = _graph_for(algorithm)
        _assert_recovered_run_identical(
            MANUAL_PROGRAMS[algorithm], graph, default_args(algorithm, graph),
            recovery=recovery,
        )

    @pytest.mark.parametrize("recovery", ("rollback", "confined"))
    def test_recovery_with_combiners(self, recovery):
        graph = _graph_for("pagerank")
        compiled = compile_algorithm("pagerank", emit_java=False)
        args = default_args("pagerank", graph)
        baseline = compiled.program.run(graph, args, num_workers=WORKERS, use_combiners=True)
        plan = FaultPlan(checkpoint_every=3, crashes=(CrashEvent(0, 5),), recovery=recovery)
        run = compiled.program.run(
            graph, args, num_workers=WORKERS, use_combiners=True, ft=FaultTolerance(plan)
        )
        assert run.outputs == baseline.outputs
        assert run.metrics.parity_key() == baseline.metrics.parity_key()

    def test_acceptance_pagerank_crash_at_5_checkpoint_every_3(self):
        """The issue's acceptance scenario, verbatim: PageRank, worker crash
        at superstep 5, --checkpoint-every 3 → bit-identical ranks,
        superstep count, and message totals."""
        graph = load_graph("twitter", SCALE)
        compiled = compile_algorithm("pagerank", emit_java=False)
        args = default_args("pagerank", graph)
        baseline = compiled.program.run(graph, args, num_workers=WORKERS)
        plan = FaultPlan(checkpoint_every=3, crashes=(CrashEvent(1, 5),))
        run = compiled.program.run(graph, args, num_workers=WORKERS, ft=FaultTolerance(plan))
        assert run.outputs["pg_rank"] == baseline.outputs["pg_rank"]
        assert run.metrics.supersteps == baseline.metrics.supersteps
        assert run.metrics.messages == baseline.metrics.messages
        assert run.metrics.lost_supersteps == 2  # checkpoints at 0 and 3


class TestCheckpointMechanics:
    def _pagerank(self):
        graph = load_graph("twitter", SCALE)
        compiled = compile_algorithm("pagerank", emit_java=False)
        return compiled.program, graph, default_args("pagerank", graph)

    def test_checkpoint_schedule(self):
        program, graph, args = self._pagerank()
        plan = FaultPlan(checkpoint_every=4)
        run = program.run(graph, args, num_workers=WORKERS, ft=FaultTolerance(plan))
        # 12 supersteps → checkpoints at 0, 4, 8, and 12 (the master cannot
        # know superstep 12 will halt until it runs, so the boundary
        # checkpoint happens first — as on a real cluster).
        assert run.metrics.checkpoints_taken == 4
        assert run.metrics.faults_injected == 0

    def test_no_checkpoints_without_plan_items(self):
        program, graph, args = self._pagerank()
        run = program.run(graph, args, num_workers=WORKERS, ft=FaultTolerance(FaultPlan()))
        assert run.metrics.checkpoints_taken == 0
        assert run.metrics.checkpoint_bytes == 0

    def test_initial_checkpoint_taken_when_crashes_scheduled(self):
        # checkpoint_every=0 but a crash is scheduled: the superstep-0
        # snapshot (the durable job input) is the recovery point.
        program, graph, args = self._pagerank()
        plan = FaultPlan(checkpoint_every=0, crashes=(CrashEvent(1, 4),))
        baseline = program.run(graph, args, num_workers=WORKERS)
        run = program.run(graph, args, num_workers=WORKERS, ft=FaultTolerance(plan))
        assert run.metrics.checkpoints_taken >= 1
        assert run.metrics.lost_supersteps == 4
        assert run.outputs == baseline.outputs
        assert run.metrics.parity_key() == baseline.metrics.parity_key()

    def test_crash_at_checkpointed_superstep_loses_nothing(self):
        program, graph, args = self._pagerank()
        plan = FaultPlan(checkpoint_every=3, crashes=(CrashEvent(2, 6),))
        run = program.run(graph, args, num_workers=WORKERS, ft=FaultTolerance(plan))
        assert run.metrics.faults_injected == 1
        assert run.metrics.lost_supersteps == 0

    def test_confined_replays_less_than_rollback(self):
        program, graph, args = self._pagerank()
        work = {}
        for recovery in ("rollback", "confined"):
            plan = FaultPlan(checkpoint_every=3, crashes=(CrashEvent(1, 5),), recovery=recovery)
            run = program.run(graph, args, num_workers=WORKERS, ft=FaultTolerance(plan))
            work[recovery] = run.metrics.recovery_replay_work
        # Confined recovery recomputes one partition (~1/WORKERS of the graph).
        assert 0 < work["confined"] < work["rollback"]
        assert work["rollback"] == 2 * graph.num_nodes  # 2 lost supersteps

    def test_multiple_crashes_in_one_run(self):
        program, graph, args = self._pagerank()
        baseline = program.run(graph, args, num_workers=WORKERS)
        plan = FaultPlan(
            checkpoint_every=2,
            crashes=(CrashEvent(0, 3), CrashEvent(3, 7)),
        )
        run = program.run(graph, args, num_workers=WORKERS, ft=FaultTolerance(plan))
        assert run.metrics.faults_injected == 2
        assert run.outputs == baseline.outputs
        assert run.metrics.parity_key() == baseline.metrics.parity_key()

    def test_crash_beyond_run_never_fires(self):
        program, graph, args = self._pagerank()
        plan = FaultPlan(checkpoint_every=3, crashes=(CrashEvent(1, 10_000),))
        run = program.run(graph, args, num_workers=WORKERS, ft=FaultTolerance(plan))
        assert run.metrics.faults_injected == 0

    def test_manager_is_single_use(self):
        program, graph, args = self._pagerank()
        ft = FaultTolerance(FaultPlan(checkpoint_every=3))
        program.run(graph, args, num_workers=WORKERS, ft=ft)
        with pytest.raises(RuntimeError):
            program.run(graph, args, num_workers=WORKERS, ft=ft)

    def test_crash_on_unknown_worker_rejected(self):
        program, graph, args = self._pagerank()
        plan = FaultPlan(checkpoint_every=1, crashes=(CrashEvent(WORKERS, 2),))
        with pytest.raises(ValueError):
            program.run(graph, args, num_workers=WORKERS, ft=FaultTolerance(plan))


class TestTransientMessageLoss:
    def test_retries_metered_deterministically_without_changing_results(self):
        graph = load_graph("twitter", SCALE)
        compiled = compile_algorithm("pagerank", emit_java=False)
        args = default_args("pagerank", graph)
        baseline = compiled.program.run(graph, args, num_workers=WORKERS)
        plan = FaultPlan(message_loss_rate=0.2, max_retries=4, seed=5)
        first = compiled.program.run(graph, args, num_workers=WORKERS, ft=FaultTolerance(plan))
        second = compiled.program.run(graph, args, num_workers=WORKERS, ft=FaultTolerance(plan))
        assert first.outputs == baseline.outputs
        assert first.metrics.parity_key() == baseline.metrics.parity_key()
        assert first.metrics.messages_retried == second.metrics.messages_retried > 0
        assert first.metrics.retry_backoff_units == second.metrics.retry_backoff_units
        # backoff is exponential, so units dominate the retry count
        assert first.metrics.retry_backoff_units >= first.metrics.messages_retried

    def test_single_worker_has_no_retries(self):
        graph = load_graph("twitter", SCALE)
        compiled = compile_algorithm("pagerank", emit_java=False)
        args = default_args("pagerank", graph)
        plan = FaultPlan(message_loss_rate=0.5)
        run = compiled.program.run(graph, args, num_workers=1, ft=FaultTolerance(plan))
        assert run.metrics.messages_retried == 0


class TestPlanValidation:
    def test_parse_crash(self):
        assert parse_crash("1@5") == CrashEvent(worker=1, superstep=5)

    @pytest.mark.parametrize("bad", ("", "1", "x@5", "1@y", "@"))
    def test_parse_crash_rejects_garbage(self, bad):
        with pytest.raises(ValueError):
            parse_crash(bad)

    def test_unknown_recovery_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(recovery="optimistic")

    def test_negative_interval_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(checkpoint_every=-1)

    def test_loss_rate_range(self):
        with pytest.raises(ValueError):
            FaultPlan(message_loss_rate=1.0)


class TestColumnState:
    def test_full_and_partitioned_restore(self):
        import pickle

        columns = {"x": [1, 2, 3, 4], "y": [[0], [1], [2], [3]]}
        state = ColumnState(columns)
        # The manager pickles checkpoints (deep isolation); emulate that.
        saved = pickle.loads(pickle.dumps(state.checkpoint_state()))
        columns["x"][:] = [9, 9, 9, 9]
        columns["y"][2].append(99)
        state.restore_state(saved, vertices=[2])
        assert columns["x"] == [9, 9, 3, 9]  # only vertex 2 restored
        assert columns["y"][2] == [2]
        state.restore_state(saved)
        assert columns["x"] == [1, 2, 3, 4]
        assert columns["y"] == [[0], [1], [2], [3]]

    def test_restore_mutates_in_place(self):
        columns = {"x": [1, 2]}
        alias = columns["x"]
        state = ColumnState(columns)
        saved = state.checkpoint_state()
        columns["x"][:] = [5, 6]
        state.restore_state(saved)
        assert alias == [1, 2]


class TestEngineGuards:
    def test_master_send_raises(self):
        g = Graph.from_edges(2, [(0, 1)])

        def master(ctx):
            ctx.send(1, (0,))

        with pytest.raises(RuntimeError, match="outside the vertex phase"):
            PregelEngine(g, lambda c, v, m: None, master).run()

    def test_summary_includes_halt_reason(self):
        g = Graph.from_edges(2, [(0, 1)])
        metrics = PregelEngine(g, lambda c, v, m: None, max_supersteps=2).run()
        assert "halt=max_supersteps" in metrics.summary()

    def test_summary_includes_ft_section_only_when_active(self):
        g = Graph.from_edges(2, [(0, 1)])
        metrics = PregelEngine(g, lambda c, v, m: None, max_supersteps=2).run()
        assert "ft:" not in metrics.summary()


class TestTracedRecovery:
    """Checkpoint/restore and the observability layer: a traced fault-injected
    run's deterministic event stream — and the per-superstep message record —
    must come out identical to the failure-free run's, because rollback
    rewinds the trace and the replay regenerates the dropped records."""

    def _pagerank(self):
        graph = load_graph("twitter", SCALE)
        compiled = compile_algorithm("pagerank", emit_java=False)
        return compiled.program, graph, default_args("pagerank", graph)

    @pytest.mark.parametrize("recovery", ("rollback", "confined"))
    def test_recovered_trace_matches_failure_free(self, recovery):
        from repro.obs import Tracer, deterministic_jsonl

        program, graph, args = self._pagerank()
        clean = Tracer()
        program.run(graph, args, num_workers=WORKERS, tracer=clean)
        faulted = Tracer()
        plan = FaultPlan(
            checkpoint_every=2, crashes=(CrashEvent(1, 5),), recovery=recovery
        )
        run = program.run(
            graph, args, num_workers=WORKERS, ft=FaultTolerance(plan), tracer=faulted
        )
        assert run.metrics.faults_injected == 1
        assert deterministic_jsonl(faulted.events) == deterministic_jsonl(clean.events)
        # the FT lifecycle is still visible in the full (info) stream
        names = [e.name for e in faulted.events]
        assert "ft.crash" in names and "ft.recovery" in names
        assert "ft.crash" not in [e.name for e in clean.events]

    @pytest.mark.parametrize("recovery", ("rollback", "confined"))
    def test_per_superstep_record_survives_recovery(self, recovery):
        program, graph, args = self._pagerank()
        baseline = program.run(
            graph, args, num_workers=WORKERS, record_per_superstep=True
        )
        record = baseline.metrics.per_superstep_messages
        assert len(record) == baseline.metrics.supersteps
        plan = FaultPlan(
            checkpoint_every=2, crashes=(CrashEvent(1, 5),), recovery=recovery
        )
        run = program.run(
            graph,
            args,
            num_workers=WORKERS,
            record_per_superstep=True,
            ft=FaultTolerance(plan),
        )
        assert run.metrics.per_superstep_messages == record

    def test_trace_rewound_to_checkpoint_on_rollback(self):
        # white-box: after the crash at superstep 5 (checkpoint at 4), the
        # trace must contain exactly one record per superstep — the rewound
        # steps 4 of the first attempt replaced by the replay's.
        from repro.obs import Tracer

        program, graph, args = self._pagerank()
        tracer = Tracer()
        plan = FaultPlan(checkpoint_every=4, crashes=(CrashEvent(2, 5),))
        run = program.run(
            graph, args, num_workers=WORKERS, ft=FaultTolerance(plan), tracer=tracer
        )
        steps = [e.det["step"] for e in tracer.events if e.name == "superstep"]
        assert steps == list(range(run.metrics.supersteps))


class TestFaultAblation:
    def test_sweep_is_identical_everywhere_and_monotone(self):
        baseline, rows = fault_ablation(
            scale=SCALE, intervals=(1, 3, 5), crash=CrashEvent(1, 5)
        )
        assert all(row.identical for row in rows)
        by_interval = {
            row.checkpoint_every: row.metrics
            for row in rows
            if row.recovery == "rollback"
        }
        # denser checkpoints → more checkpoint overhead ...
        assert (
            by_interval[1].checkpoints_taken
            > by_interval[3].checkpoints_taken
            > by_interval[5].checkpoints_taken
        )
        # ... and the work lost to a crash at superstep 5 is the distance
        # back to the last checkpoint: 5 mod interval.
        for every, metrics in by_interval.items():
            assert metrics.lost_supersteps == 5 % every
