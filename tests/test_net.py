"""Simulated unreliable transport (repro.pregel.net): the reliable delivery
protocol must hide every channel fault — drop, duplicate, reorder, corrupt —
behind sequence-numbered exactly-once delivery, so a run over a hostile
channel is bit-identical to a run over a perfect one, for every algorithm
and both schedulers.  The faults themselves are metered, never delivered."""

import pytest

from repro.algorithms.manual import MANUAL_PROGRAMS
from repro.algorithms.sources import ALGORITHMS
from repro.bench.harness import default_args
from repro.compiler import compile_algorithm
from repro.graphgen.registry import applicable_graphs, load_graph
from repro.pregel import Graph, PregelEngine
from repro.pregel.net import (
    NetFaultPlan,
    SimulatedTransport,
    TransportError,
    parse_net_faults,
)

SCALE = 0.25
WORKERS = 4

#: a hostile mix exercising all four fault types at once
MIXED = dict(drop_rate=0.15, dup_rate=0.1, reorder_rate=0.15, corrupt_rate=0.05, seed=13)


def _graph_for(algorithm: str) -> Graph:
    return load_graph(applicable_graphs(algorithm)[0], SCALE)


def _assert_transport_run_identical(program, graph, args, plan, **opts):
    baseline = program.run(graph, args, num_workers=WORKERS, **opts)
    run = program.run(
        graph, args, num_workers=WORKERS, transport=SimulatedTransport(plan), **opts
    )
    assert run.outputs == baseline.outputs
    assert run.metrics.parity_key() == baseline.metrics.parity_key()
    return baseline, run


class TestPlanValidation:
    def test_defaults_are_fault_free(self):
        plan = NetFaultPlan()
        assert not plan.lossy

    @pytest.mark.parametrize("field", ("drop_rate", "dup_rate", "reorder_rate", "corrupt_rate"))
    def test_rate_ranges(self, field):
        assert NetFaultPlan(**{field: 0.9}).lossy
        with pytest.raises(ValueError):
            NetFaultPlan(**{field: 0.91})
        with pytest.raises(ValueError):
            NetFaultPlan(**{field: -0.1})

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            NetFaultPlan(latency_units=-1)
        with pytest.raises(ValueError):
            NetFaultPlan(jitter_units=-1)

    def test_max_attempts_floor(self):
        with pytest.raises(ValueError):
            NetFaultPlan(max_attempts=0)


class TestSpecParsing:
    def test_full_spec(self):
        plan = parse_net_faults("drop=0.05,dup=0.02,reorder=0.1,corrupt=0.01,latency=2,jitter=0.5,max-attempts=50,seed=7")
        assert plan == NetFaultPlan(
            drop_rate=0.05, dup_rate=0.02, reorder_rate=0.1, corrupt_rate=0.01,
            latency_units=2.0, jitter_units=0.5, max_attempts=50, seed=7,
        )

    def test_empty_spec_is_default(self):
        assert parse_net_faults("") == NetFaultPlan()

    @pytest.mark.parametrize("bad", ("drop", "bogus=1", "drop=x", "drop=0.99"))
    def test_rejects_garbage(self, bad):
        with pytest.raises(ValueError):
            parse_net_faults(bad)


class TestFastPath:
    def test_zero_fault_plan_returns_part_unchanged(self):
        transport = SimulatedTransport(NetFaultPlan())
        g = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        engine = PregelEngine(g, lambda c, v, m: None, num_workers=WORKERS)
        transport.attach(engine)
        part = {1: [(0, 1.0)], 3: [(0, 2.0), (0, 3.0)]}
        assert transport.route_part(1, part) is part
        assert transport.stats["messages_routed"] == 3
        assert engine.metrics.messages_dropped == 0
        assert engine.metrics.packets_retransmitted == 0

    def test_transport_is_single_use(self):
        transport = SimulatedTransport(NetFaultPlan())
        g = Graph.from_edges(2, [(0, 1)])
        transport.attach(PregelEngine(g, lambda c, v, m: None))
        with pytest.raises(RuntimeError):
            transport.attach(PregelEngine(g, lambda c, v, m: None))

    def test_fast_path_run_is_identical(self):
        graph = _graph_for("pagerank")
        program = compile_algorithm("pagerank", emit_java=False).program
        args = default_args("pagerank", graph)
        baseline, run = _assert_transport_run_identical(
            program, graph, args, NetFaultPlan()
        )
        assert run.metrics.messages_dropped == 0
        assert run.metrics.net_backoff_units == 0


class TestFaultMetering:
    def _run(self, plan):
        graph = _graph_for("pagerank")
        program = compile_algorithm("pagerank", emit_java=False).program
        args = default_args("pagerank", graph)
        return _assert_transport_run_identical(program, graph, args, plan)[1]

    def test_drop_meters_drops_and_retransmissions(self):
        m = self._run(NetFaultPlan(drop_rate=0.2, seed=3)).metrics
        assert m.messages_dropped > 0
        assert m.packets_retransmitted > 0
        # exponential backoff dominates the retransmission count
        assert m.net_backoff_units >= m.packets_retransmitted
        assert m.messages_duplicated > 0  # lost acks force dedup'd retransmits
        assert m.messages_corrupted == 0

    def test_dup_meters_dedup_hits_only(self):
        m = self._run(NetFaultPlan(dup_rate=0.2, seed=3)).metrics
        assert m.messages_duplicated > 0
        assert m.messages_dropped == 0
        assert m.packets_retransmitted == 0

    def test_reorder_meters_reorder_buffer_parks(self):
        m = self._run(NetFaultPlan(reorder_rate=0.3, seed=3)).metrics
        assert m.messages_reordered > 0
        assert m.messages_dropped == m.messages_duplicated == 0

    def test_corrupt_meters_checksum_failures_and_retransmits(self):
        m = self._run(NetFaultPlan(corrupt_rate=0.2, seed=3)).metrics
        assert m.messages_corrupted > 0
        assert m.packets_retransmitted > 0  # corrupt arrivals stay unacked
        assert m.messages_dropped == 0

    def test_same_seed_meters_identically(self):
        plan = NetFaultPlan(**MIXED)
        first = self._run(plan).metrics
        second = self._run(plan).metrics
        for name in (
            "messages_dropped",
            "messages_duplicated",
            "messages_reordered",
            "messages_corrupted",
            "packets_retransmitted",
            "net_backoff_units",
        ):
            assert getattr(first, name) == getattr(second, name)

    def test_summary_gains_transport_section_only_when_faulted(self):
        clean = self._run(NetFaultPlan()).metrics
        assert "transport:" not in clean.summary()
        faulted = self._run(NetFaultPlan(**MIXED)).metrics
        assert "transport: dropped=" in faulted.summary()

    def test_hostile_channel_exhausts_retry_budget(self):
        graph = _graph_for("pagerank")
        program = compile_algorithm("pagerank", emit_java=False).program
        args = default_args("pagerank", graph)
        plan = NetFaultPlan(drop_rate=0.9, max_attempts=2, seed=3)
        with pytest.raises(TransportError):
            program.run(
                graph, args, num_workers=WORKERS, transport=SimulatedTransport(plan)
            )


class TestTransportParity:
    """The tentpole property: bit-identical results under any fault mix."""

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_generated_program_under_mixed_faults(self, algorithm):
        graph = _graph_for(algorithm)
        program = compile_algorithm(algorithm, emit_java=False).program
        _assert_transport_run_identical(
            program, graph, default_args(algorithm, graph), NetFaultPlan(**MIXED)
        )

    @pytest.mark.parametrize("algorithm", sorted(MANUAL_PROGRAMS))
    def test_manual_baseline_under_mixed_faults(self, algorithm):
        graph = _graph_for(algorithm)
        _assert_transport_run_identical(
            MANUAL_PROGRAMS[algorithm],
            graph,
            default_args(algorithm, graph),
            NetFaultPlan(**MIXED),
        )

    @pytest.mark.parametrize("scheduling", ("frontier", "dense"))
    def test_both_schedulers(self, scheduling):
        graph = _graph_for("sssp")
        program = compile_algorithm("sssp", emit_java=False).program
        _assert_transport_run_identical(
            program,
            graph,
            default_args("sssp", graph),
            NetFaultPlan(**MIXED),
            scheduling=scheduling,
        )

    def test_with_combiners(self):
        graph = _graph_for("pagerank")
        program = compile_algorithm("pagerank", emit_java=False).program
        _assert_transport_run_identical(
            program,
            graph,
            default_args("pagerank", graph),
            NetFaultPlan(**MIXED),
            use_combiners=True,
        )

    def test_composes_with_scheduled_crash_recovery(self):
        from repro.pregel.ft import CrashEvent, FaultPlan, FaultTolerance

        graph = _graph_for("pagerank")
        program = compile_algorithm("pagerank", emit_java=False).program
        args = default_args("pagerank", graph)
        baseline = program.run(graph, args, num_workers=WORKERS)
        run = program.run(
            graph,
            args,
            num_workers=WORKERS,
            transport=SimulatedTransport(NetFaultPlan(**MIXED)),
            ft=FaultTolerance(
                FaultPlan(checkpoint_every=2, crashes=(CrashEvent(1, 5),))
            ),
        )
        assert run.outputs == baseline.outputs
        assert run.metrics.parity_key() == baseline.metrics.parity_key()


class TestTraceEvents:
    def test_net_route_events_are_info_only(self):
        from repro.obs import Tracer, deterministic_jsonl

        graph = _graph_for("pagerank")
        program = compile_algorithm("pagerank", emit_java=False).program
        args = default_args("pagerank", graph)
        clean = Tracer()
        program.run(graph, args, num_workers=WORKERS, tracer=clean)
        faulted = Tracer()
        program.run(
            graph,
            args,
            num_workers=WORKERS,
            tracer=faulted,
            transport=SimulatedTransport(NetFaultPlan(**MIXED)),
        )
        names = [e.name for e in faulted.events]
        assert "net.route" in names
        routed = next(e for e in faulted.events if e.name == "net.route")
        assert routed.det is None  # info-only: deterministic stream unchanged
        assert deterministic_jsonl(faulted.events) == deterministic_jsonl(clean.events)
