"""Workload-generator and graph-I/O tests."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.graphgen import (
    TABLE1,
    applicable_graphs,
    attach_standard_props,
    bipartite,
    load_edge_list,
    load_graph,
    save_edge_list,
    skewed,
    twitter_like,
    uniform_random,
    web_like,
)


class TestUniformRandom:
    def test_exact_edge_count(self):
        g = uniform_random(50, 200, seed=1)
        assert g.num_edges == 200

    def test_no_self_loops(self):
        g = uniform_random(30, 100, seed=2)
        assert all(a != b for a, b in g.edges())

    def test_deterministic_by_seed(self):
        a = uniform_random(30, 100, seed=3)
        b = uniform_random(30, 100, seed=3)
        assert list(a.edges()) == list(b.edges())

    def test_different_seeds_differ(self):
        a = uniform_random(30, 100, seed=3)
        b = uniform_random(30, 100, seed=4)
        assert list(a.edges()) != list(b.edges())


class TestTwitterLike:
    def test_size_near_target(self):
        g = twitter_like(500, avg_degree=8, seed=1)
        assert g.num_nodes == 500
        assert g.num_edges >= 0.5 * 500 * 8

    def test_degree_skew(self):
        """RMAT must be much more skewed than uniform: compare max degrees."""
        rmat = twitter_like(600, avg_degree=10, seed=1)
        uni = uniform_random(600, rmat.num_edges, seed=1)
        max_rmat = max(rmat.in_degree(v) for v in rmat.nodes())
        max_uni = max(uni.in_degree(v) for v in uni.nodes())
        assert max_rmat > 2 * max_uni

    def test_no_self_loops(self):
        g = twitter_like(200, avg_degree=6, seed=5)
        assert all(a != b for a, b in g.edges())


class TestWebLike:
    def test_reaches_target_size(self):
        g = web_like(400, avg_degree=8, seed=1)
        assert g.num_edges > 400  # at least one edge per non-root node

    def test_locality(self):
        """Most edges should connect nearby ids (the crawl-order locality)."""
        g = web_like(1000, avg_degree=8, seed=2)
        window = max(4, 1000 // 50)
        local = sum(1 for a, b in g.edges() if abs(a - b) <= window)
        assert local / g.num_edges > 0.5

    def test_deterministic(self):
        a = web_like(200, seed=7)
        b = web_like(200, seed=7)
        assert list(a.edges()) == list(b.edges())


class TestSkewed:
    def test_hub_has_max_in_degree_by_default(self):
        g = skewed(400, 6, seed=5)
        assert g.in_degree(0) == 399

    def test_custom_hub_degree(self):
        g = skewed(400, 6, seed=5, hub_degree=100)
        assert g.in_degree(0) >= 100

    def test_more_skewed_than_uniform(self):
        n, deg = 500, 8
        sk = skewed(n, deg, seed=3)
        un = uniform_random(n, n * deg, seed=3)
        # Ignore the forced hub; the power-law tail alone should beat uniform.
        sk_max = max(sk.in_degree(v) for v in sk.nodes() if v != 0)
        un_max = max(un.in_degree(v) for v in un.nodes())
        assert sk_max > un_max

    def test_no_self_loops(self):
        g = skewed(300, 6, seed=2)
        assert all(a != b for a, b in g.edges())

    def test_deterministic_by_seed(self):
        assert list(skewed(200, 5, seed=9).edges()) == list(
            skewed(200, 5, seed=9).edges()
        )

    def test_seed_changes_graph(self):
        assert list(skewed(200, 5, seed=1).edges()) != list(
            skewed(200, 5, seed=2).edges()
        )

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(num_nodes=1),
            dict(num_nodes=100, hub_degree=0),
            dict(num_nodes=100, hub_degree=100),
            dict(num_nodes=100, exponent=1.0),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            skewed(**kwargs)


class TestBipartite:
    def test_edges_run_left_to_right(self):
        g = bipartite(10, 15, num_edges=40, seed=1)
        is_left = g.node_props["is_left"]
        for a, b in g.edges():
            assert is_left[a] and not is_left[b]

    def test_is_left_partition_sizes(self):
        g = bipartite(10, 15, num_edges=20, seed=1)
        assert sum(g.node_props["is_left"]) == 10

    def test_edge_count_capped_by_complete_graph(self):
        g = bipartite(3, 3, num_edges=100, seed=1)
        assert g.num_edges == 9


class TestStandardProps:
    def test_attach(self):
        g = uniform_random(40, 120, seed=1)
        attach_standard_props(g, seed=2)
        assert len(g.node_props["age"]) == 40
        assert len(g.edge_props["len"]) == 120
        assert all(1 <= w <= 15 for w in g.edge_props["len"])
        assert set(g.node_props["member"]) <= {0, 1}


class TestRegistry:
    def test_all_specs_load(self):
        for key in TABLE1:
            g = load_graph(key, scale=0.05)
            assert g.num_nodes > 0 and g.num_edges > 0
            assert "age" in g.node_props and "len" in g.edge_props

    def test_scale_changes_size(self):
        small = load_graph("twitter", scale=0.05)
        larger = load_graph("twitter", scale=0.2)
        assert larger.num_nodes > small.num_nodes

    def test_unknown_key(self):
        with pytest.raises(KeyError):
            load_graph("facebook")

    def test_applicability(self):
        assert applicable_graphs("bipartite_matching") == ["bipartite"]
        assert set(applicable_graphs("pagerank")) == set(TABLE1)


class TestEdgeListIO:
    def test_round_trip(self, tmp_path):
        g = uniform_random(20, 60, seed=1)
        attach_standard_props(g, seed=2)
        path = tmp_path / "g.txt"
        save_edge_list(g, path)
        loaded = load_edge_list(path)
        assert loaded.num_nodes == g.num_nodes
        assert sorted(loaded.edges()) == sorted(g.edges())
        assert loaded.node_props["age"] == g.node_props["age"]

    def test_edge_props_round_trip(self, tmp_path):
        g = uniform_random(10, 30, seed=3)
        attach_standard_props(g, seed=4)
        path = tmp_path / "g.txt"
        save_edge_list(g, path)
        loaded = load_edge_list(path)
        # compare per-pair weights (CSR order may differ)
        def weights(graph):
            return {
                (v, graph.out_targets[p]): graph.edge_props["len"][p]
                for v in graph.nodes()
                for p in graph.out_edge_range(v)
            }

        assert weights(loaded) == weights(g)

    def test_nodes_header_preserves_isolated(self, tmp_path):
        from repro.pregel import Graph

        g = Graph.from_edges(5, [(0, 1)])
        path = tmp_path / "g.txt"
        save_edge_list(g, path)
        assert load_edge_list(path).num_nodes == 5

    @given(st.integers(min_value=0, max_value=1000))
    @settings(max_examples=10, deadline=None)
    def test_round_trip_random(self, tmp_path_factory, seed):
        g = uniform_random(12, 30, seed=seed)
        path = tmp_path_factory.mktemp("io") / "g.txt"
        save_edge_list(g, path)
        assert sorted(load_edge_list(path).edges()) == sorted(g.edges())
