"""Golden-artifact regression tests.

The generated Java, the executable Python vertex program, and the canonical
Green-Marl for AvgTeen are pinned under ``tests/goldens/``.  A failure here
means code generation changed — inspect the diff, and if intentional,
regenerate with:

    python - <<'PY'
    from repro.compiler import compile_algorithm
    from pathlib import Path
    r = compile_algorithm("avg_teen_cnt")
    Path("tests/goldens/avg_teen_cnt.java").write_text(r.java_source)
    Path("tests/goldens/avg_teen_cnt.vertex.py").write_text(r.program.vertex_source)
    Path("tests/goldens/avg_teen_cnt.canonical.gm").write_text(r.canonical_source)
    PY
"""

from pathlib import Path

from repro.compiler import compile_algorithm

GOLDEN_DIR = Path(__file__).parent / "goldens"


def test_java_golden():
    compiled = compile_algorithm("avg_teen_cnt")
    assert compiled.java_source == (GOLDEN_DIR / "avg_teen_cnt.java").read_text()


def test_vertex_program_golden():
    compiled = compile_algorithm("avg_teen_cnt", emit_java=False)
    assert compiled.program.vertex_source == (
        GOLDEN_DIR / "avg_teen_cnt.vertex.py"
    ).read_text()


def test_canonical_form_golden():
    compiled = compile_algorithm("avg_teen_cnt", emit_java=False)
    assert compiled.canonical_source == (
        GOLDEN_DIR / "avg_teen_cnt.canonical.gm"
    ).read_text()


def test_compilation_is_deterministic():
    """Two independent compilations emit byte-identical artifacts."""
    a = compile_algorithm("bc_approx")
    b = compile_algorithm("bc_approx")
    assert a.java_source == b.java_source
    assert a.program.vertex_source == b.program.vertex_source
    assert a.canonical_source == b.canonical_source
