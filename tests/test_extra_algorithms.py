"""The beyond-paper algorithms: compile, run, and match references.

These demonstrate the compiler generalizes past the paper's benchmark set —
each one combines the §3.1/§4.1 rules in a new way (bidirectional pushes,
double flips per iteration, pure-reduction programs with no messages)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms import reference
from repro.algorithms.sources import EXTRA_ALGORITHMS, load_source
from repro.compiler import compile_algorithm
from repro.graphgen import attach_standard_props, uniform_random
from repro.interp import interpret
from repro.pregel import Graph


def make_graph(n, m, seed):
    g = uniform_random(n, m, seed=seed)
    attach_standard_props(g, seed=seed + 1)
    return g


class TestCompilation:
    def test_all_extra_algorithms_compile(self):
        for name in EXTRA_ALGORITHMS:
            compiled = compile_algorithm(name)
            assert compiled.ir.phases
            assert compiled.java_source

    def test_cc_needs_both_directions(self):
        compiled = compile_algorithm("connected_components", emit_java=False)
        assert compiled.ir.needs_in_nbrs
        assert compiled.rule_row()["Multiple Comm."]

    def test_hits_flips_both_ways(self):
        compiled = compile_algorithm("hits", emit_java=False)
        assert compiled.rule_row()["Flipping Edge"]
        assert compiled.rule_row()["Incoming Neighbors"]

    def test_degree_stats_has_no_messages(self):
        compiled = compile_algorithm("degree_stats", emit_java=False)
        assert len(compiled.ir.messages) == 0


class TestConnectedComponents:
    def check(self, graph):
        ref = reference.connected_components(graph)
        run = compile_algorithm("connected_components", emit_java=False).program.run(graph)
        interp = interpret(load_source("connected_components"), graph)
        assert run.outputs["comp"] == ref
        assert interp.outputs["comp"] == ref

    def test_small(self, small_graph):
        self.check(small_graph)

    def test_disconnected(self):
        g = Graph.from_edges(7, [(0, 1), (2, 3), (3, 4)])
        run = compile_algorithm("connected_components", emit_java=False).program.run(g)
        assert run.outputs["comp"] == [0, 0, 2, 2, 2, 5, 6]

    def test_direction_does_not_matter(self):
        # a -> b and b -> a must give the same components
        fwd = Graph.from_edges(4, [(0, 1), (2, 3)])
        rev = Graph.from_edges(4, [(1, 0), (3, 2)])
        prog = compile_algorithm("connected_components", emit_java=False).program
        assert prog.run(fwd).outputs["comp"] == prog.run(rev).outputs["comp"]

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_random_graphs(self, seed):
        self.check(make_graph(20, 35, seed))


class TestHits:
    ARGS = {"max_iter": 6}

    def check(self, graph):
        ref_auth, ref_hub = reference.hits_l1(graph, 6)
        run = compile_algorithm("hits", emit_java=False).program.run(graph, self.ARGS)
        interp = interpret(load_source("hits"), graph, self.ARGS)
        for got in (run.outputs, interp.outputs):
            for name, ref in (("auth", ref_auth), ("hub", ref_hub)):
                assert len(got[name]) == len(ref)
                for a, b in zip(got[name], ref):
                    assert abs(a - b) < 1e-9, name

    def test_small(self, small_graph):
        self.check(small_graph)

    def test_star_graph_hub_is_center(self):
        g = Graph.from_edges(5, [(0, 1), (0, 2), (0, 3), (0, 4)])
        run = compile_algorithm("hits", emit_java=False).program.run(g, self.ARGS)
        hub = run.outputs["hub"]
        assert hub[0] == max(hub)
        auth = run.outputs["auth"]
        assert auth[0] == 0.0

    def test_empty_graph_is_stable(self):
        g = Graph.from_edges(3, [])
        run = compile_algorithm("hits", emit_java=False).program.run(g, self.ARGS)
        assert run.outputs["auth"] == [0.0, 0.0, 0.0]

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=8, deadline=None)
    def test_random_graphs(self, seed):
        self.check(make_graph(15, 40, seed))


class TestDegreeStats:
    def test_values(self, small_graph):
        run = compile_algorithm("degree_stats", emit_java=False).program.run(small_graph)
        degs = [small_graph.out_degree(v) for v in small_graph.nodes()]
        assert run.outputs["deg"] == degs
        assert abs(run.result - sum(degs) / len(degs)) < 1e-12
        mx = max(degs)
        assert run.outputs["is_max"] == [d == mx for d in degs]

    def test_matches_interpreter(self, small_graph):
        run = compile_algorithm("degree_stats", emit_java=False).program.run(small_graph)
        interp = interpret(load_source("degree_stats"), small_graph)
        assert run.outputs == interp.outputs
        assert abs(run.result - interp.result) < 1e-12

    def test_no_messages_sent(self, small_graph):
        run = compile_algorithm("degree_stats", emit_java=False).program.run(small_graph)
        assert run.metrics.messages == 0
