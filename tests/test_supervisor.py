"""Supervision layer (repro.pregel.supervisor): heartbeat failure detection,
automatic escalation into checkpoint recovery, straggler quarantine, and
graceful degradation.

The acceptance property (ISSUE 4): for every algorithm, generated and
manual, a run under a nonzero drop+dup+reorder fault plan with
heartbeat-*detected* (not pre-declared) worker crashes produces outputs and
``parity_key()`` byte-identical to the failure-free run, under both
recovery strategies — and exhausting the restart budget degrades to a
structured partial-result report instead of raising."""

import pytest

from repro.algorithms.manual import MANUAL_PROGRAMS
from repro.algorithms.sources import ALGORITHMS
from repro.bench.harness import default_args
from repro.compiler import compile_algorithm
from repro.graphgen.registry import applicable_graphs, load_graph
from repro.pregel import Graph, PregelEngine
from repro.pregel.ft import CrashEvent, FaultPlan, FaultTolerance
from repro.pregel.net import NetFaultPlan, SimulatedTransport
from repro.pregel.supervisor import (
    PhiAccrualDetector,
    Supervisor,
    SupervisorPlan,
    parse_heartbeat,
)

SCALE = 0.25
WORKERS = 4

#: the ISSUE's nonzero drop+duplicate+reorder channel
CHANNEL = dict(drop_rate=0.1, dup_rate=0.05, reorder_rate=0.1, seed=7)


def _graph_for(algorithm: str) -> Graph:
    return load_graph(applicable_graphs(algorithm)[0], SCALE)


def _supervised_run(program, graph, args, *, recovery, baseline, **opts):
    """Run under the acceptance fault mix: hostile channel + a *silent*
    crash the heartbeat detector (not a pre-declared schedule) must catch."""
    crash_step = max(1, baseline.metrics.supersteps - 2)
    supervisor = Supervisor(
        SupervisorPlan(silent_crashes=(CrashEvent(1, crash_step),))
    )
    run = program.run(
        graph,
        args,
        num_workers=WORKERS,
        ft=FaultTolerance(FaultPlan(checkpoint_every=2, recovery=recovery)),
        transport=SimulatedTransport(NetFaultPlan(**CHANNEL)),
        supervisor=supervisor,
        **opts,
    )
    return run, supervisor


class TestAcceptanceMatrix:
    """Every algorithm × both recovery strategies, detected crashes only."""

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    @pytest.mark.parametrize("recovery", ("rollback", "confined"))
    def test_generated_program(self, algorithm, recovery):
        graph = _graph_for(algorithm)
        program = compile_algorithm(algorithm, emit_java=False).program
        args = default_args(algorithm, graph)
        baseline = program.run(graph, args, num_workers=WORKERS)
        run, supervisor = _supervised_run(
            program, graph, args, recovery=recovery, baseline=baseline
        )
        assert run.outputs == baseline.outputs
        assert run.metrics.parity_key() == baseline.metrics.parity_key()
        assert run.metrics.restarts == 1
        assert run.metrics.heartbeats_missed > 0
        report = supervisor.report()
        assert not report["degraded"]
        assert [d["worker"] for d in report["detections"]] == [1]

    @pytest.mark.parametrize("algorithm", sorted(MANUAL_PROGRAMS))
    @pytest.mark.parametrize("recovery", ("rollback", "confined"))
    def test_manual_baseline(self, algorithm, recovery):
        program = MANUAL_PROGRAMS[algorithm]
        graph = _graph_for(algorithm)
        args = default_args(algorithm, graph)
        baseline = program.run(graph, args, num_workers=WORKERS)
        run, _ = _supervised_run(
            program, graph, args, recovery=recovery, baseline=baseline
        )
        assert run.outputs == baseline.outputs
        assert run.metrics.parity_key() == baseline.metrics.parity_key()
        assert run.metrics.restarts == 1

    @pytest.mark.parametrize("scheduling", ("frontier", "dense"))
    def test_both_schedulers(self, scheduling):
        graph = _graph_for("sssp")
        program = compile_algorithm("sssp", emit_java=False).program
        args = default_args("sssp", graph)
        baseline = program.run(
            graph, args, num_workers=WORKERS, scheduling=scheduling
        )
        run, _ = _supervised_run(
            program,
            graph,
            args,
            recovery="confined",
            baseline=baseline,
            scheduling=scheduling,
        )
        assert run.outputs == baseline.outputs
        assert run.metrics.parity_key() == baseline.metrics.parity_key()


class TestDegradation:
    def _pagerank(self):
        graph = load_graph("twitter", SCALE)
        program = compile_algorithm("pagerank", emit_java=False).program
        return program, graph, default_args("pagerank", graph)

    def test_exhausted_budget_degrades_not_raises(self):
        program, graph, args = self._pagerank()
        supervisor = Supervisor(
            SupervisorPlan(max_restarts=0, silent_crashes=(CrashEvent(1, 5),))
        )
        run = program.run(
            graph,
            args,
            num_workers=WORKERS,
            ft=FaultTolerance(FaultPlan(checkpoint_every=2)),
            supervisor=supervisor,
        )
        assert run.metrics.halt_reason == "unrecoverable"
        assert run.metrics.supersteps == 5  # partial: halted at the detection
        assert run.metrics.restarts == 0
        report = supervisor.report()
        assert report["degraded"] is True
        assert report["halt_reason"] == "unrecoverable"
        assert report["completed_supersteps"] == 5
        assert report["detections"][0]["action"] == "degraded"

    def test_budget_of_n_survives_n_crashes_then_degrades(self):
        program, graph, args = self._pagerank()
        baseline = program.run(graph, args, num_workers=WORKERS)
        crashes = (CrashEvent(1, 3), CrashEvent(2, 5), CrashEvent(3, 7))
        # budget 3 covers all three detected deaths → full, identical run
        healthy = Supervisor(
            SupervisorPlan(max_restarts=3, silent_crashes=crashes)
        )
        run = program.run(
            graph, args, num_workers=WORKERS,
            ft=FaultTolerance(FaultPlan(checkpoint_every=2)),
            supervisor=healthy,
        )
        assert run.metrics.restarts == 3
        assert run.outputs == baseline.outputs
        assert run.metrics.parity_key() == baseline.metrics.parity_key()
        # budget 2 dies on the third
        degraded = Supervisor(
            SupervisorPlan(max_restarts=2, silent_crashes=crashes)
        )
        run = program.run(
            graph, args, num_workers=WORKERS,
            ft=FaultTolerance(FaultPlan(checkpoint_every=2)),
            supervisor=degraded,
        )
        assert run.metrics.halt_reason == "unrecoverable"
        assert run.metrics.restarts == 2
        assert degraded.report()["restarts_used"] == 2

    def test_summary_gains_supervisor_section(self):
        program, graph, args = self._pagerank()
        run, _ = _supervised_run(
            program, graph, args, recovery="rollback",
            baseline=program.run(graph, args, num_workers=WORKERS),
        )
        assert "supervisor: heartbeats_missed=" in run.metrics.summary()


class TestDetector:
    def test_phi_grows_with_silence(self):
        det = PhiAccrualDetector(expected_interval=1.0)
        assert det.phi(1.0) < det.phi(5.0)

    def test_threshold_silence_scales_with_mean(self):
        fast = PhiAccrualDetector(expected_interval=1.0)
        slow = PhiAccrualDetector(expected_interval=4.0)
        assert fast.silence_for_phi(4.0) < slow.silence_for_phi(4.0)

    def test_window_adapts_the_mean(self):
        det = PhiAccrualDetector(expected_interval=1.0, window=4)
        for _ in range(4):
            det.observe(3.0)
        assert det.mean_interval == pytest.approx(3.0)

    def test_detection_latency_metered_in_heartbeats(self):
        graph = load_graph("twitter", SCALE)
        program = compile_algorithm("pagerank", emit_java=False).program
        args = default_args("pagerank", graph)
        supervisor = Supervisor(
            SupervisorPlan(
                heartbeat_interval=0.5,
                deadline_timeout=3.0,
                silent_crashes=(CrashEvent(1, 4),),
            )
        )
        run = program.run(
            graph, args, num_workers=WORKERS,
            ft=FaultTolerance(FaultPlan(checkpoint_every=2)),
            supervisor=supervisor,
        )
        detection = supervisor.report()["detections"][0]
        # silence is bounded by the deadline; missed beats ≈ silence / interval
        assert detection["silence"] <= 3.0 + 1e-9
        assert run.metrics.heartbeats_missed == detection["heartbeats_missed"] > 0


class TestQuarantine:
    def test_straggler_is_quarantined_and_results_unchanged(self):
        graph = load_graph("twitter", SCALE)
        program = compile_algorithm("pagerank", emit_java=False).program
        args = default_args("pagerank", graph)
        baseline = program.run(graph, args, num_workers=WORKERS)
        supervisor = Supervisor(
            SupervisorPlan(
                stragglers=(2,),
                straggle_factor=10.0,
                barrier_timeout=5.0,
                straggle_strikes=2,
            )
        )
        run = program.run(
            graph, args, num_workers=WORKERS,
            ft=FaultTolerance(FaultPlan(checkpoint_every=2)),
            supervisor=supervisor,
        )
        report = supervisor.report()
        assert report["quarantined_workers"] == [2]
        assert run.metrics.workers_quarantined == 1
        # re-hosting is physical placement only: worker 2's partition moved
        # to another host, the logical ledger — and the results — untouched
        assert 2 not in report["partition_hosts"]
        assert run.outputs == baseline.outputs
        assert run.metrics.parity_key() == baseline.metrics.parity_key()

    def test_quarantined_hosts_are_covered_on_crash(self):
        # worker 2 is quarantined early; its partition re-hosts onto some
        # live worker, which then silently dies — detection must recover
        # every partition the dead worker hosted, still bit-identically.
        graph = load_graph("twitter", SCALE)
        program = compile_algorithm("pagerank", emit_java=False).program
        args = default_args("pagerank", graph)
        baseline = program.run(graph, args, num_workers=WORKERS)
        probe = Supervisor(
            SupervisorPlan(
                stragglers=(2,), straggle_factor=10.0,
                barrier_timeout=5.0, straggle_strikes=1,
            )
        )
        program.run(
            graph, args, num_workers=WORKERS,
            ft=FaultTolerance(FaultPlan(checkpoint_every=2)),
            supervisor=probe,
        )
        host = probe.report()["partition_hosts"][2]
        supervisor = Supervisor(
            SupervisorPlan(
                stragglers=(2,), straggle_factor=10.0,
                barrier_timeout=5.0, straggle_strikes=1,
                silent_crashes=(CrashEvent(host, 6),),
            )
        )
        run = program.run(
            graph, args, num_workers=WORKERS,
            ft=FaultTolerance(FaultPlan(checkpoint_every=2, recovery="confined")),
            supervisor=supervisor,
        )
        assert run.metrics.restarts == 1
        assert run.outputs == baseline.outputs
        assert run.metrics.parity_key() == baseline.metrics.parity_key()


class TestRandomFailures:
    def test_seeded_crash_rate_is_deterministic(self):
        graph = load_graph("twitter", SCALE)
        program = compile_algorithm("pagerank", emit_java=False).program
        args = default_args("pagerank", graph)
        baseline = program.run(graph, args, num_workers=WORKERS)

        def once():
            supervisor = Supervisor(
                SupervisorPlan(crash_rate=0.05, max_restarts=50, seed=9)
            )
            run = program.run(
                graph, args, num_workers=WORKERS,
                ft=FaultTolerance(FaultPlan(checkpoint_every=2)),
                supervisor=supervisor,
            )
            return run

        first, second = once(), once()
        assert first.metrics.restarts == second.metrics.restarts
        assert first.metrics.heartbeats_missed == second.metrics.heartbeats_missed
        assert first.outputs == baseline.outputs
        assert first.metrics.parity_key() == baseline.metrics.parity_key()


class TestWiring:
    def test_supervisor_requires_fault_tolerance(self):
        g = Graph.from_edges(2, [(0, 1)])
        with pytest.raises(ValueError, match="requires a FaultTolerance"):
            PregelEngine(
                g, lambda c, v, m: None, supervisor=Supervisor(SupervisorPlan())
            )

    def test_supervisor_is_single_use(self):
        graph = load_graph("twitter", 0.05)
        program = compile_algorithm("pagerank", emit_java=False).program
        args = default_args("pagerank", graph)
        supervisor = Supervisor(SupervisorPlan())
        program.run(
            graph, args, num_workers=WORKERS,
            ft=FaultTolerance(FaultPlan()), supervisor=supervisor,
        )
        with pytest.raises(RuntimeError):
            program.run(
                graph, args, num_workers=WORKERS,
                ft=FaultTolerance(FaultPlan()), supervisor=supervisor,
            )

    def test_crash_on_unknown_worker_rejected(self):
        graph = load_graph("twitter", 0.05)
        program = compile_algorithm("pagerank", emit_java=False).program
        args = default_args("pagerank", graph)
        supervisor = Supervisor(
            SupervisorPlan(silent_crashes=(CrashEvent(WORKERS, 2),))
        )
        with pytest.raises(ValueError):
            program.run(
                graph, args, num_workers=WORKERS,
                ft=FaultTolerance(FaultPlan()), supervisor=supervisor,
            )

    def test_supervisor_events_are_info_only(self):
        from repro.obs import Tracer, deterministic_jsonl

        graph = load_graph("twitter", SCALE)
        program = compile_algorithm("pagerank", emit_java=False).program
        args = default_args("pagerank", graph)
        clean = Tracer()
        program.run(graph, args, num_workers=WORKERS, tracer=clean)
        supervised = Tracer()
        supervisor = Supervisor(
            SupervisorPlan(silent_crashes=(CrashEvent(1, 5),))
        )
        program.run(
            graph, args, num_workers=WORKERS,
            ft=FaultTolerance(FaultPlan(checkpoint_every=2)),
            supervisor=supervisor, tracer=supervised,
        )
        names = [e.name for e in supervised.events]
        assert "supervisor.suspect" in names and "supervisor.restart" in names
        assert deterministic_jsonl(supervised.events) == deterministic_jsonl(clean.events)


class TestPlanValidation:
    @pytest.mark.parametrize(
        "kwargs",
        (
            {"heartbeat_interval": 0},
            {"phi_threshold": 0},
            {"deadline_timeout": -1},
            {"straggle_strikes": 0},
            {"max_restarts": -1},
            {"crash_rate": 1.0},
            {"straggle_rate": -0.1},
            {"straggle_factor": 0.5},
        ),
    )
    def test_bad_plans_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SupervisorPlan(**kwargs)

    def test_parse_heartbeat_full(self):
        plan = parse_heartbeat(
            "interval=0.5,phi=3,deadline=4,barrier=8,strikes=2,"
            "crash=1@3+0@6,straggler=2+3,crash-rate=0.01,"
            "straggle-rate=0.02,straggle-factor=6,seed=5",
            max_restarts=7,
        )
        assert plan == SupervisorPlan(
            heartbeat_interval=0.5, phi_threshold=3.0, deadline_timeout=4.0,
            barrier_timeout=8.0, straggle_strikes=2, max_restarts=7,
            silent_crashes=(CrashEvent(1, 3), CrashEvent(0, 6)),
            stragglers=(2, 3), crash_rate=0.01, straggle_rate=0.02,
            straggle_factor=6.0, seed=5,
        )

    def test_parse_heartbeat_empty_is_default(self):
        assert parse_heartbeat("") == SupervisorPlan()

    @pytest.mark.parametrize(
        "bad", ("junk", "bogus=1", "crash=zz", "straggler=x", "interval=x")
    )
    def test_parse_heartbeat_rejects_garbage(self, bad):
        with pytest.raises(ValueError):
            parse_heartbeat(bad)
