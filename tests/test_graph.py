"""Graph substrate tests: CSR construction, in/out duality, edge-property
alignment — unit cases plus hypothesis property tests."""

from hypothesis import given, settings, strategies as st

import pytest

from repro.pregel import Graph


class TestConstruction:
    def test_small_graph(self):
        g = Graph.from_edges(3, [(0, 1), (0, 2), (1, 2)])
        assert g.num_nodes == 3
        assert g.num_edges == 3
        assert g.out_nbrs(0) == [1, 2]
        assert g.out_nbrs(2) == []
        assert g.in_nbrs(2) == [0, 1]

    def test_degrees(self):
        g = Graph.from_edges(3, [(0, 1), (0, 2), (1, 2)])
        assert g.out_degree(0) == 2 and g.in_degree(0) == 0
        assert g.out_degree(2) == 0 and g.in_degree(2) == 2

    def test_edges_iteration(self):
        edges = [(0, 1), (1, 2), (2, 0)]
        g = Graph.from_edges(3, edges)
        assert sorted(g.edges()) == sorted(edges)

    def test_out_of_range_edge_rejected(self):
        with pytest.raises(ValueError):
            Graph.from_edges(2, [(0, 5)])

    def test_isolated_nodes(self):
        g = Graph.from_edges(5, [(0, 1)])
        assert g.out_nbrs(3) == [] and g.in_nbrs(3) == []

    def test_empty_graph(self):
        g = Graph.from_edges(0, [])
        assert g.num_nodes == 0 and g.num_edges == 0


class TestEdgeProperties:
    def test_csr_alignment_through_out_edges(self):
        edges = [(1, 0), (0, 2), (0, 1)]
        weights = [10, 20, 30]
        g = Graph.from_edges(3, edges, edge_props={"w": weights})
        by_pair = {}
        for v in g.nodes():
            for pos in g.out_edge_range(v):
                by_pair[(v, g.out_targets[pos])] = g.edge_props["w"][pos]
        assert by_pair == {(1, 0): 10, (0, 2): 20, (0, 1): 30}

    def test_in_edge_ids_point_to_same_property(self):
        edges = [(0, 2), (1, 2)]
        g = Graph.from_edges(3, edges, edge_props={"w": [7, 8]})
        incoming = {}
        for i in range(g.in_offsets[2], g.in_offsets[3]):
            src = g.in_sources[i]
            incoming[src] = g.edge_props["w"][g.in_edge_ids[i]]
        assert incoming == {0: 7, 1: 8}

    def test_wrong_length_property_rejected(self):
        with pytest.raises(ValueError):
            Graph.from_edges(2, [(0, 1)], edge_props={"w": [1, 2]})

    def test_add_props_after_construction(self):
        g = Graph.from_edges(2, [(0, 1)])
        g.add_node_prop("x", default=5)
        g.add_edge_prop_csr("w", default=2)
        assert g.node_props["x"] == [5, 5]
        assert g.edge_props["w"] == [2]

    def test_add_node_prop_length_check(self):
        g = Graph.from_edges(2, [(0, 1)])
        with pytest.raises(ValueError):
            g.add_node_prop("x", [1])


@st.composite
def edge_lists(draw):
    n = draw(st.integers(min_value=1, max_value=20))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            max_size=60,
        )
    )
    return n, edges


class TestProperties:
    @given(edge_lists())
    @settings(max_examples=60)
    def test_out_in_duality(self, data):
        n, edges = data
        g = Graph.from_edges(n, edges)
        out_pairs = sorted((v, w) for v in g.nodes() for w in g.out_nbrs(v))
        in_pairs = sorted((w, v) for v in g.nodes() for w in g.in_nbrs(v))
        assert out_pairs == sorted(edges)
        assert in_pairs == sorted(edges)

    @given(edge_lists())
    @settings(max_examples=60)
    def test_degree_sums_equal_edge_count(self, data):
        n, edges = data
        g = Graph.from_edges(n, edges)
        assert sum(g.out_degree(v) for v in g.nodes()) == len(edges)
        assert sum(g.in_degree(v) for v in g.nodes()) == len(edges)

    @given(edge_lists())
    @settings(max_examples=60)
    def test_offsets_monotone(self, data):
        n, edges = data
        g = Graph.from_edges(n, edges)
        assert all(a <= b for a, b in zip(g.out_offsets, g.out_offsets[1:]))
        assert all(a <= b for a, b in zip(g.in_offsets, g.in_offsets[1:]))
        assert g.out_offsets[-1] == len(edges)

    @given(edge_lists())
    @settings(max_examples=40)
    def test_in_edge_ids_are_a_permutation(self, data):
        n, edges = data
        g = Graph.from_edges(n, edges)
        assert sorted(g.in_edge_ids) == list(range(len(edges)))
