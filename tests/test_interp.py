"""Reference interpreter unit tests: constructs exercised in isolation."""

import pytest

from repro.interp import interpret
from repro.pregel import Graph


def diamond() -> Graph:
    #   0 -> 1 -> 3
    #   0 -> 2 -> 3
    return Graph.from_edges(4, [(0, 1), (0, 2), (1, 3), (2, 3)], edge_props={"len": [1, 2, 3, 4]})


class TestSequential:
    def test_arithmetic_and_return(self):
        out = interpret(
            "Procedure p(G: Graph): Int { Int x = 2; x += 3; x *= 4; Return x; }",
            diamond(),
        )
        assert out.result == 20

    def test_min_max_assign(self):
        out = interpret(
            "Procedure p(G: Graph): Int { Int x = 10; x min= 3; x max= 7; Return x; }",
            diamond(),
        )
        assert out.result == 7

    def test_ternary_and_cast(self):
        out = interpret(
            "Procedure p(G: Graph): Double { Int c = 4; Return (c == 0) ? 0.0 : 10 / (Double) c; }",
            diamond(),
        )
        assert out.result == 2.5

    def test_integer_division_truncates(self):
        out = interpret("Procedure p(G: Graph): Int { Return 7 / 2; }", diamond())
        assert out.result == 3

    def test_abs(self):
        out = interpret("Procedure p(G: Graph): Int { Return |3 - 10|; }", diamond())
        assert out.result == 7

    def test_if_else(self):
        out = interpret(
            "Procedure p(G: Graph): Int { If (False) { Return 1; } Else { Return 2; } }",
            diamond(),
        )
        assert out.result == 2

    def test_do_while_runs_once(self):
        out = interpret(
            "Procedure p(G: Graph): Int { Int k = 0; Do { k++; } While (False); Return k; }",
            diamond(),
        )
        assert out.result == 1

    def test_graph_methods(self):
        out = interpret(
            "Procedure p(G: Graph): Long { Return G.NumNodes() + G.NumEdges(); }",
            diamond(),
        )
        assert out.result == 8


class TestParallelLoops:
    def test_group_assignment(self):
        out = interpret(
            "Procedure p(G: Graph; d: N_P<Int>) { G.d = 7; }", diamond()
        )
        assert out.outputs["d"] == [7, 7, 7, 7]

    def test_group_copy(self):
        g = diamond()
        g.add_node_prop("src", [1, 2, 3, 4])
        out = interpret(
            "Procedure p(G: Graph, src: N_P<Int>; d: N_P<Int>) { G.d = src; }"
            .replace("src;", "G.src;"),
            g,
        )
        assert out.outputs["d"] == [1, 2, 3, 4]

    def test_filtered_loop(self):
        out = interpret(
            "Procedure p(G: Graph; d: N_P<Int>) {"
            "  G.d = 0;"
            "  Foreach (n: G.Nodes)[n.d == 0] { n.d = 1; } }",
            diamond(),
        )
        assert out.outputs["d"] == [1, 1, 1, 1]

    def test_neighborhood_push(self):
        out = interpret(
            "Procedure p(G: Graph; d: N_P<Int>) {"
            "  G.d = 0;"
            "  Foreach (n: G.Nodes) { Foreach (t: n.Nbrs) { t.d += 1; } } }",
            diamond(),
        )
        assert out.outputs["d"] == [0, 1, 1, 2]  # in-degrees

    def test_in_neighborhood_pull(self):
        out = interpret(
            "Procedure p(G: Graph; d: N_P<Int>) {"
            "  Foreach (n: G.Nodes) { n.d = Count(t: n.InNbrs); } }",
            diamond(),
        )
        assert out.outputs["d"] == [0, 1, 1, 2]

    def test_edge_property_via_to_edge(self):
        out = interpret(
            "Procedure p(G: Graph, len: E_P<Int>; d: N_P<Int>) {"
            "  G.d = 0;"
            "  Foreach (n: G.Nodes) { Foreach (s: n.Nbrs) {"
            "    Edge e = s.ToEdge();"
            "    s.d += e.len; } } }",
            diamond(),
        )
        assert out.outputs["d"] == [0, 1, 2, 7]

    def test_deferred_assign_reads_old_values(self):
        # every node's nxt = sum of out-neighbors' v, all reading pre-loop v
        out = interpret(
            "Procedure p(G: Graph; v: N_P<Int>) {"
            "  G.v = 1;"
            "  Foreach (n: G.Nodes) {"
            "    Int s = Sum(t: n.Nbrs){t.v};"
            "    n.v <= s + n.v @ n;"
            "  } }",
            diamond(),
        )
        assert out.outputs["v"] == [3, 2, 2, 1]

    def test_degree_method(self):
        out = interpret(
            "Procedure p(G: Graph; d: N_P<Int>) {"
            "  Foreach (n: G.Nodes) { n.d = n.Degree(); } }",
            diamond(),
        )
        assert out.outputs["d"] == [2, 1, 1, 0]

    def test_in_degree_method(self):
        out = interpret(
            "Procedure p(G: Graph; d: N_P<Int>) {"
            "  Foreach (n: G.Nodes) { n.d = n.InDegree(); } }",
            diamond(),
        )
        assert out.outputs["d"] == [0, 1, 1, 2]


class TestReductions:
    def test_sum_with_filter(self):
        g = diamond()
        g.add_node_prop("w", [10, 20, 30, 40])
        out = interpret(
            "Procedure p(G: Graph, w: N_P<Int>): Int {"
            "  Return Sum(u: G.Nodes)[u.w > 15]{u.w}; }",
            g,
        )
        assert out.result == 90

    def test_product(self):
        g = diamond()
        g.add_node_prop("w", [1, 2, 3, 4])
        out = interpret(
            "Procedure p(G: Graph, w: N_P<Int>): Int {"
            "  Return Product(u: G.Nodes){u.w}; }",
            g,
        )
        assert out.result == 24

    def test_min_max(self):
        g = diamond()
        g.add_node_prop("w", [5, 2, 9, 4])
        out = interpret(
            "Procedure p(G: Graph, w: N_P<Int>): Int {"
            "  Return Max(u: G.Nodes){u.w} - Min(u: G.Nodes){u.w}; }",
            g,
        )
        assert out.result == 7

    def test_exist_and_all(self):
        g = diamond()
        g.add_node_prop("f", [False, True, False, False])
        out = interpret(
            "Procedure p(G: Graph, f: N_P<Bool>): Bool {"
            "  Return Exist(u: G.Nodes){u.f} && !All(u: G.Nodes){u.f}; }",
            g,
        )
        assert out.result is True

    def test_avg_empty_is_zero(self):
        g = diamond()
        g.add_node_prop("w", [1, 2, 3, 4])
        out = interpret(
            "Procedure p(G: Graph, w: N_P<Int>): Double {"
            "  Return Avg(u: G.Nodes)[u.w > 100]{u.w}; }",
            g,
        )
        assert out.result == 0.0


class TestBfs:
    def test_levels_via_forward_bfs(self):
        g = diamond()
        out = interpret(
            "Procedure p(G: Graph, s: Node; lvl: N_P<Int>) {"
            "  G.lvl = 0 - 1;"
            "  Int cur = 0;"
            "  InBFS (v: G.Nodes From s) {"
            "    v.lvl = Count(w: v.UpNbrs) == 0 ? 0 : Min(w: v.UpNbrs){w.lvl} + 1;"
            "  } }",
            g,
            {"s": 0},
        )
        assert out.outputs["lvl"] == [0, 1, 1, 2]

    def test_reverse_visits_deepest_first(self):
        g = diamond()
        out = interpret(
            "Procedure p(G: Graph, s: Node; ordv: N_P<Int>) {"
            "  Int c = 0;"
            "  InBFS (v: G.Nodes From s) { }"
            "  InReverse {"
            "    c++;"
            "    v.ordv = c;"
            "  } }",
            g,
            {"s": 0},
        )
        ordv = out.outputs["ordv"]
        assert ordv[3] == 1  # deepest level visited first
        assert ordv[0] == 4  # root last

    def test_unreachable_nodes_skipped(self):
        g = Graph.from_edges(3, [(0, 1)])
        out = interpret(
            "Procedure p(G: Graph, s: Node; seen: N_P<Bool>) {"
            "  G.seen = False;"
            "  InBFS (v: G.Nodes From s) { v.seen = True; } }",
            g,
            {"s": 0},
        )
        assert out.outputs["seen"] == [True, True, False]


class TestArguments:
    def test_missing_scalar_argument(self):
        with pytest.raises(ValueError):
            interpret("Procedure p(G: Graph, K: Int) { }", diamond(), {})

    def test_missing_edge_property(self):
        with pytest.raises(ValueError):
            interpret(
                "Procedure p(G: Graph, w: E_P<Int>) { }", Graph.from_edges(1, []), {}
            )

    def test_output_prop_default_initialized(self):
        out = interpret("Procedure p(G: Graph; d: N_P<Int>) { }", diamond(), {})
        assert out.outputs["d"] == [0, 0, 0, 0]
