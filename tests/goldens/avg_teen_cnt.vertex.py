# Generated Pregel vertex program for 'avg_teen_cnt'.
def make_vertex_compute(env):
    globals().update(env)
    
    def _phase_0(ctx, vid, messages):
        # par@4+par@4
        F__gm_p_gm_r00[vid] = 0
        if ((F_age[vid] >= 13) and (F_age[vid] <= 19)):
            if OUT_OFF[vid] != OUT_OFF[vid + 1]:
                _msg = (0,)
                ctx.send_nbrs(vid, _msg)
    
    def _phase_2(ctx, vid, messages):
        # recv@4+par@4+par@7+par@7
        for _m in messages:
            if _m[0] == 0:
                F__gm_p_gm_r00[vid] = F__gm_p_gm_r00[vid] + 1
        F_teen_cnt[vid] = F__gm_p_gm_r00[vid]
        if (F_age[vid] > B['K']):
            ctx.put_global('_gm_r1', OP_SUM, F_teen_cnt[vid])
        if (F_age[vid] > B['K']):
            ctx.put_global('_gm_r2', OP_SUM, 1)
    
    _DISPATCH = {0: _phase_0, 2: _phase_2}
    
    def vertex_compute(ctx, vid, messages):
        _fn = _DISPATCH.get(B.get('_state', -1))
        if _fn is not None:
            _fn(ctx, vid, messages)
    return vertex_compute
