"""Observability subsystem (repro.obs): tracer API, exporters, engine and
compiler instrumentation.

The central property mirrors the scheduler and fault-tolerance suites: the
*deterministic projection* of a trace — every event's ``det`` payload, in
stream order, timestamps excluded — is byte-identical across
``frontier``/``dense`` scheduling for all six paper algorithms, and the
compiler-pass events carry enough to regenerate the paper's Table 3."""

import json

import pytest

from repro.algorithms.manual import MANUAL_PROGRAMS
from repro.algorithms.sources import ALGORITHMS
from repro.bench.harness import default_args
from repro.compiler import compile_algorithm
from repro.graphgen.registry import applicable_graphs, load_graph
from repro.obs import (
    NULL_TRACER,
    NullTracer,
    TraceEvent,
    Tracer,
    chrome_trace,
    deterministic_events,
    deterministic_jsonl,
    load_jsonl,
    profile_report,
    straggler_supersteps,
    strip_timing,
    timeline_report,
    to_jsonl,
    worker_profile,
    write_chrome_trace,
    write_jsonl,
)
from repro.pregel import Graph, PregelEngine
from repro.transform.pipeline import TABLE3_ROWS

SCALE = 0.125


def _traced_run(algorithm, *, scheduling="frontier", **engine_opts):
    graph = load_graph(applicable_graphs(algorithm)[0], SCALE)
    tracer = Tracer()
    compiled = compile_algorithm(algorithm, emit_java=False, tracer=tracer)
    args = default_args(algorithm, graph)
    run = compiled.program.run(
        graph, args, scheduling=scheduling, tracer=tracer, **engine_opts
    )
    return run, tracer


class TestTracerCore:
    def test_events_accumulate_in_order(self):
        tracer = Tracer()
        tracer.event("a", det={"x": 1})
        tracer.event("b", info={"y": 2})
        assert [e.name for e in tracer.events] == ["a", "b"]
        assert tracer.events[0].det == {"x": 1} and tracer.events[0].info is None
        assert tracer.events[1].info == {"y": 2} and tracer.events[1].det is None

    def test_timestamps_are_monotone_from_epoch(self):
        tracer = Tracer()
        tracer.event("a")
        tracer.event("b")
        assert 0.0 <= tracer.events[0].ts <= tracer.events[1].ts

    def test_span_records_duration_and_payload(self):
        tracer = Tracer()
        with tracer.span("work", cat="compile") as span:
            span.det["n"] = 3
            span.info["note"] = "hi"
        (event,) = tracer.events
        assert event.name == "work" and event.cat == "compile"
        assert event.dur is not None and event.dur >= 0.0
        assert event.det == {"n": 3} and event.info == {"note": "hi"}

    def test_span_with_empty_payload_carries_none(self):
        tracer = Tracer()
        with tracer.span("empty"):
            pass
        assert tracer.events[0].det is None and tracer.events[0].info is None

    def test_span_emits_even_when_body_raises(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError()
        assert [e.name for e in tracer.events] == ["boom"]

    def test_on_rollback_drops_replayed_steps_only(self):
        tracer = Tracer()
        tracer.event("compile.pass", det={"pass": "x", "applied": True})
        tracer.event("superstep", det={"step": 0})
        tracer.event("superstep", det={"step": 1})
        tracer.event("ft.checkpoint", info={"superstep": 2})  # det=None: kept
        tracer.event("superstep", det={"step": 2})
        tracer.on_rollback(1)
        assert [e.name for e in tracer.events] == [
            "compile.pass",
            "superstep",
            "ft.checkpoint",
        ]
        assert tracer.events[1].det["step"] == 0

    def test_null_tracer_is_inert(self):
        assert NullTracer.enabled is False
        assert NULL_TRACER.now() == 0.0
        NULL_TRACER.event("ignored", det={"x": 1})
        with NULL_TRACER.span("ignored") as span:
            span.det["x"] = 1  # accepted, discarded
        NULL_TRACER.on_rollback(0)
        assert NULL_TRACER.events == ()

    def test_deterministic_projection_excludes_info_only_events(self):
        events = [
            TraceEvent("a", det={"k": 1}, info={"wall": 0.5}),
            TraceEvent("b", info={"wall": 0.5}),
        ]
        assert deterministic_events(events) == [{"name": "a", "det": {"k": 1}}]


class TestExporters:
    def _events(self):
        _, tracer = _traced_run("pagerank")
        return tracer.events

    def test_jsonl_round_trip(self, tmp_path):
        events = self._events()
        path = tmp_path / "trace.jsonl"
        write_jsonl(events, path)
        loaded = load_jsonl(path)
        assert len(loaded) == len(events)
        assert [o["name"] for o in loaded] == [e.name for e in events]
        # strip_timing re-derives the deterministic projection from disk
        stripped = [s for s in (strip_timing(o) for o in loaded) if s]
        assert stripped == deterministic_events(events)

    def test_jsonl_lines_parse_and_omit_none(self):
        events = self._events()
        for line in to_jsonl(events).splitlines():
            obj = json.loads(line)
            assert "name" in obj and "ts" in obj
            assert None not in obj.values()

    def test_deterministic_jsonl_excludes_timing(self):
        text = deterministic_jsonl(self._events())
        assert text
        for line in text.splitlines():
            obj = json.loads(line)
            assert set(obj) == {"name", "det"}

    def test_chrome_trace_is_valid_and_complete(self, tmp_path):
        events = self._events()
        path = tmp_path / "trace.json"
        write_chrome_trace(events, path)
        doc = json.loads(path.read_text())
        trace_events = doc["traceEvents"]
        phases = {e["ph"] for e in trace_events}
        assert {"M", "X", "C"} <= phases
        # every phase of every superstep appears as a complete slice
        supersteps = sum(1 for e in events if e.name == "superstep")
        slices = [e for e in trace_events if e["ph"] == "X" and e["name"].startswith("vertex s")]
        assert len(slices) == supersteps
        for e in trace_events:
            assert e["pid"] == 1
            if e["ph"] in ("X", "C", "i"):
                assert e["ts"] >= 0

    def test_timeline_report_covers_every_superstep(self):
        events = self._events()
        report = timeline_report(events)
        supersteps = [e for e in events if e.name == "superstep"]
        # one row per superstep plus header, separator, and run summary
        assert len(report.splitlines()) >= len(supersteps) + 2
        assert "mode" in report and "vertex ms" in report
        assert f"supersteps={len(supersteps)}" in report

    def test_empty_trace_renders_placeholders(self):
        assert "no superstep records" in timeline_report([])
        assert "no superstep records" in profile_report([])


class TestProfile:
    def test_worker_profile_totals_match_metrics(self):
        run, tracer = _traced_run("pagerank", num_workers=4)
        stats = worker_profile(tracer.events)
        assert len(stats) == 4
        assert [s.sent for s in stats] == run.metrics.worker_sent
        assert sum(s.computed for s in stats) > 0
        assert all(s.seconds >= 0 for s in stats)

    def test_straggler_rows_are_sorted_by_imbalance(self):
        _, tracer = _traced_run("pagerank", num_workers=4)
        rows = straggler_supersteps(tracer.events, top=3)
        assert len(rows) <= 3
        assert all(r.imbalance >= 1.0 for r in rows)
        assert [r.imbalance for r in rows] == sorted(
            (r.imbalance for r in rows), reverse=True
        )

    def test_profile_report_mentions_each_worker(self):
        _, tracer = _traced_run("pagerank", num_workers=3)
        report = profile_report(tracer.events)
        assert "per-worker totals" in report
        assert "send load imbalance" in report


class TestEngineInstrumentation:
    def test_superstep_records_match_run_metrics(self):
        run, tracer = _traced_run("pagerank", num_workers=4)
        steps = [e for e in tracer.events if e.name == "superstep"]
        assert len(steps) == run.metrics.supersteps
        assert [e.det["step"] for e in steps] == list(range(run.metrics.supersteps))
        assert sum(e.det["messages"] for e in steps) == run.metrics.messages
        assert sum(e.det["message_bytes"] for e in steps) == run.metrics.message_bytes
        assert sum(e.det["net_messages"] for e in steps) == run.metrics.net_messages
        per_worker = [0] * 4
        for e in steps:
            for w, v in enumerate(e.det["worker_sent"]):
                per_worker[w] += v
        assert per_worker == run.metrics.worker_sent

    def test_run_end_event_carries_final_ledger(self):
        run, tracer = _traced_run("sssp")
        (end,) = [e for e in tracer.events if e.name == "run.end"]
        assert end.det["supersteps"] == run.metrics.supersteps
        assert end.det["halt_reason"] == run.metrics.halt_reason
        assert end.det["messages"] == run.metrics.messages
        assert end.info["wall_seconds"] > 0

    def test_phase_times_cover_the_superstep(self):
        _, tracer = _traced_run("pagerank")
        for e in tracer.events:
            if e.name != "superstep":
                continue
            for key in ("master_s", "route_s", "vertex_s", "combine_s", "barrier_s"):
                assert e.info[key] >= 0.0
            assert e.info["mode"] in ("sparse", "dense")

    def test_sparse_mode_reports_frontier_size(self):
        graph = Graph.from_edges(16, [(i, i + 1) for i in range(15)])
        level = [-1] * 16

        def vertex(ctx, vid, messages):
            if ctx.superstep == 0:
                if vid == 0:
                    level[vid] = 0
                    ctx.send_to_out_nbrs(vid, (0,))
            elif messages and level[vid] < 0:
                level[vid] = ctx.superstep
                ctx.send_to_out_nbrs(vid, (0,))
            ctx.vote_to_halt(vid)

        tracer = Tracer()
        PregelEngine(
            graph,
            vertex,
            use_voting=True,
            scheduling="frontier",
            frontier_threshold=1.0,
            tracer=tracer,
        ).run()
        sparse = [e for e in tracer.events if e.name == "superstep" and e.info["mode"] == "sparse"]
        assert sparse
        for e in sparse:
            assert e.info["frontier"] >= 0
            assert e.det["active"] == e.info["frontier"]

    def test_untraced_engine_keeps_hot_loop_clean(self):
        # tracer=None must not install the metering wrappers
        graph = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        engine = PregelEngine(graph, lambda c, v, m: None, max_supersteps=2)
        assert "send" not in engine.__dict__  # class method, not a shadow
        engine.run()
        nulled = PregelEngine(
            graph, lambda c, v, m: None, max_supersteps=2, tracer=NULL_TRACER
        )
        assert "send" not in nulled.__dict__
        nulled.run()


class TestSchedulerTraceParity:
    """The acceptance property: the deterministic event stream is
    byte-identical across frontier and dense scheduling."""

    @pytest.mark.parametrize("algorithm", list(ALGORITHMS))
    def test_generated_trace_parity(self, algorithm):
        _, dense = _traced_run(algorithm, scheduling="dense")
        _, frontier = _traced_run(algorithm, scheduling="frontier")
        assert deterministic_jsonl(frontier.events) == deterministic_jsonl(dense.events)

    def test_manual_trace_parity_in_sparse_regime(self):
        graph = load_graph("twitter", SCALE)
        args = default_args("sssp", graph)
        sssp = MANUAL_PROGRAMS["sssp"]
        traces = {}
        for scheduling, threshold in (("dense", 0.05), ("frontier", 1.0)):
            tracer = Tracer()
            sssp.run(
                graph,
                args,
                scheduling=scheduling,
                frontier_threshold=threshold,
                tracer=tracer,
            )
            traces[scheduling] = tracer
        assert deterministic_jsonl(traces["frontier"].events) == deterministic_jsonl(
            traces["dense"].events
        )
        # and it was a real sparse run, not a dense fallback
        assert any(
            e.info.get("mode") == "sparse"
            for e in traces["frontier"].events
            if e.name == "superstep"
        )


class TestCompilerTelemetry:
    """Table 3 as a trace: the compile.pass / compile.rules events carry
    exactly what the benchmark's check-matrix is built from."""

    @pytest.mark.parametrize("algorithm", list(ALGORITHMS))
    def test_table3_row_rebuilt_from_trace(self, algorithm):
        tracer = Tracer()
        result = compile_algorithm(algorithm, emit_java=False, tracer=tracer)
        (rules_event,) = [e for e in tracer.events if e.name == "compile.rules"]
        assert rules_event.det["procedure"] == result.name
        applied = set(rules_event.det["applied"])
        assert {name: name in applied for name in TABLE3_ROWS} == result.rule_row()

    def test_pass_events_cover_both_pipeline_halves(self):
        tracer = Tracer()
        compile_algorithm("bc_approx", emit_java=False, tracer=tracer)
        passes = [e for e in tracer.events if e.name == "compile.pass"]
        names = [e.det["pass"] for e in passes]
        # §4.1 Green-Marl→Green-Marl passes and §4.2 IR optimizations
        for expected in ("BFS Traversal", "Dissecting Loops", "State Merging", "Intra-Loop Merge"):
            assert expected in names
        for e in passes:
            assert isinstance(e.det["applied"], bool)
            assert e.dur is not None and e.dur >= 0.0

    def test_merge_events_record_state_counts(self):
        tracer = Tracer()
        result = compile_algorithm("pagerank", emit_java=False, tracer=tracer)
        merges = [
            e
            for e in tracer.events
            if e.name == "compile.pass" and "states_before" in (e.det or {})
        ]
        assert merges
        for e in merges:
            if e.det["applied"]:
                assert e.det["states_after"] < e.det["states_before"]
            else:
                assert e.det["states_after"] == e.det["states_before"]
        # the last merging event's state count is the final machine size
        assert merges[-1].det["states_after"] == len(result.ir.phases)

    def test_span_events_wrap_the_stages(self):
        tracer = Tracer()
        compile_algorithm("pagerank", emit_java=False, tracer=tracer)
        names = {e.name for e in tracer.events}
        assert {
            "compile.canonicalize",
            "compile.translate",
            "compile.optimize",
            "compile.codegen",
        } <= names
        (translate,) = [e for e in tracer.events if e.name == "compile.translate"]
        assert translate.info["states"] > 0 and translate.info["messages"] >= 0

    def test_compile_events_are_deterministic_across_compilations(self):
        streams = []
        for _ in range(2):
            tracer = Tracer()
            compile_algorithm("conductance", emit_java=False, tracer=tracer)
            streams.append(deterministic_jsonl(tracer.events))
        assert streams[0] == streams[1]


class TestFaultToleranceEvents:
    def test_ft_lifecycle_events_are_info_only(self):
        from repro.pregel.ft import CrashEvent, FaultPlan, FaultTolerance

        graph = load_graph("twitter", SCALE)
        compiled = compile_algorithm("pagerank", emit_java=False)
        args = default_args("pagerank", graph)
        tracer = Tracer()
        plan = FaultPlan(checkpoint_every=2, crashes=(CrashEvent(1, 3),))
        compiled.program.run(
            graph, args, num_workers=4, ft=FaultTolerance(plan), tracer=tracer
        )
        by_name = {}
        for e in tracer.events:
            by_name.setdefault(e.name, []).append(e)
        assert by_name["ft.checkpoint"] and by_name["ft.crash"] and by_name["ft.recovery"]
        for name in ("ft.checkpoint", "ft.crash", "ft.recovery"):
            for e in by_name[name]:
                assert e.cat == "ft"
                assert e.det is None  # excluded from the deterministic stream
        checkpoint = by_name["ft.checkpoint"][0]
        assert checkpoint.info["bytes"] > 0 and checkpoint.info["seconds"] >= 0
        crash = by_name["ft.crash"][0]
        assert crash.info["worker"] == 1 and crash.info["superstep"] == 3
        recovery = by_name["ft.recovery"][0]
        assert recovery.info["strategy"] == "rollback"
        assert recovery.info["replay_work"] > 0
