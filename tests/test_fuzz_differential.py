"""Differential fuzzing: random Green-Marl programs, interpreter vs compiler.

A seeded generator assembles random programs from the Pregel-compatible
construct pool — vertex updates, push loops in both directions, pull loops
(forcing Dissection + Edge Flipping), global reductions, filters, sequential
While loops (exercising the state machine and intra-loop merging), group
assignments — then asserts that the shared-memory interpreter and the
compiled Pregel program agree on every output property and the returned
scalar.  This sweeps interactions the hand-written tests cannot enumerate.

The generator only emits *race-free* parallel loops (Green-Marl leaves racy
programs nondeterministic, so there is nothing to compare): within one loop,

* a property written through the inner iterator (a push target) is never
  read — by anyone — nor written per-vertex in the same loop;
* a property written per-vertex is never read through an inner iterator in
  the same loop (its remote value would depend on scheduling);
* all pushes in one loop reduce with the same commutative operator.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.compiler import compile_source
from repro.graphgen import uniform_random
from repro.interp import interpret
from repro.lang.errors import GreenMarlError

HEADER = (
    "Procedure fuzz(G: Graph, a: N_P<Int>, b: N_P<Int>, x: N_P<Double>; "
    "oa: N_P<Int>, ox: N_P<Double>): Double {\n"
)

#: Stable int props: never pushed to, safe to read anywhere.
STABLE_INT = ("a", "b")


class ProgramBuilder:
    """Builds a random, race-free, Pregel-compatible Green-Marl procedure."""

    def __init__(self, seed: int, size: int):
        self.rng = random.Random(seed)
        self.size = max(1, size)
        self.scalars: list[tuple[str, str, str]] = []  # (name, type, reduce op)
        self.counter = 0
        # the scalar the current vertex loop reduces: unreadable inside it
        self._reducing: str | None = None

    def fresh(self, hint: str) -> str:
        self.counter += 1
        return f"{hint}{self.counter}"

    # -- expressions -------------------------------------------------------

    def int_atom(self, var: str | None, props: tuple[str, ...]) -> str:
        choices = [str(self.rng.randint(0, 9))]
        if var:
            choices += [f"{var}.{p}" for p in props]
            choices.append(f"{var}.Degree()")
        choices += [n for n, t, _ in self.scalars if t == "Int" and n != self._reducing]
        return self.rng.choice(choices)

    def int_expr(self, var: str | None, props: tuple[str, ...], depth: int = 2) -> str:
        if depth == 0 or self.rng.random() < 0.4:
            return self.int_atom(var, props)
        op = self.rng.choice(("+", "-", "*"))
        return (
            f"({self.int_expr(var, props, depth - 1)} {op} "
            f"{self.int_expr(var, props, depth - 1)})"
        )

    def double_expr(self, var: str | None, props: tuple[str, ...], depth: int = 2) -> str:
        if depth == 0 or self.rng.random() < 0.5:
            base = [f"{self.rng.randint(0, 9)}.5"]
            if var and "x" in props:
                base.append(f"{var}.x")
            base += [n for n, t, _ in self.scalars if t == "Double" and n != self._reducing]
            return self.rng.choice(base)
        if self.rng.random() < 0.3:
            return f"(Double) {self.int_expr(var, tuple(p for p in props if p != 'x'), depth - 1)}"
        op = self.rng.choice(("+", "-", "*"))
        return (
            f"({self.double_expr(var, props, depth - 1)} {op} "
            f"{self.double_expr(var, props, depth - 1)})"
        )

    def bool_expr(self, var: str | None, props: tuple[str, ...]) -> str:
        cmp = self.rng.choice(("<", ">", "<=", ">=", "==", "!="))
        return f"{self.int_expr(var, props, 1)} {cmp} {self.int_expr(var, props, 1)}"

    # -- statements -----------------------------------------------------------

    def vertex_stmt(self, it: str, writes: tuple[str, ...], reads: tuple[str, ...]) -> str:
        kind = self.rng.randrange(5)
        int_writes = tuple(p for p in writes if p != "ox")
        if kind == 0 and int_writes:
            prop = self.rng.choice(int_writes)
            return f"{it}.{prop} = {self.int_expr(it, reads)};"
        if kind == 1 and "ox" in writes:
            return f"{it}.ox = {self.double_expr(it, reads + ('x',))};"
        if kind == 2 and int_writes:
            prop = self.rng.choice(int_writes)
            op = self.rng.choice(("+=", "min=", "max="))
            return f"{it}.{prop} {op} {self.int_expr(it, reads)};"
        if kind == 3 and self._reducing is not None:
            # each scalar keeps one reduction operator for its whole life —
            # a global object supports a single reduction per superstep —
            # and may not be read inside the loop reducing it
            name, t, op = next(s for s in self.scalars if s[0] == self._reducing)
            expr = (
                self.int_expr(it, reads)
                if t == "Int"
                else self.double_expr(it, reads + ("x",))
            )
            return f"{name} {op} {expr};"
        if int_writes:
            return (
                f"If ({self.bool_expr(it, reads)}) {{ "
                f"{it}.{self.rng.choice(int_writes)} += {self.int_expr(it, reads, 1)}; }}"
            )
        return f"{it}.ox = {self.double_expr(it, reads + ('x',), 1)};"

    def push_loop(self, outer: str, target: str, op: str, reads: tuple[str, ...]) -> str:
        inner = self.fresh("t")
        direction = self.rng.choice(("Nbrs", "InNbrs"))
        value = self.rng.choice(
            (
                self.int_expr(outer, reads, 1),
                f"({outer}.a + {inner}.b)",
                f"{outer}.Degree()",
                "1",
            )
        )
        filt = ""
        if self.rng.random() < 0.5:
            who = self.rng.choice((outer, inner))
            filt = f"[{self.bool_expr(who, reads)}]"
        return (
            f"Foreach ({inner}: {outer}.{direction}){filt} {{ "
            f"{inner}.{target} {op} {value}; }}"
        )

    def pull_loop_nest(self) -> str:
        """An outer loop whose body pulls — must be flipped by the compiler."""
        outer = self.fresh("n")
        inner = self.fresh("t")
        direction = self.rng.choice(("Nbrs", "InNbrs"))
        agg = self.rng.choice(
            (
                f"Count({inner}: {outer}.{direction})[{self.bool_expr(inner, STABLE_INT)}]",
                f"Sum({inner}: {outer}.{direction}){{{inner}.a + {inner}.b}}",
            )
        )
        return f"Foreach ({outer}: G.Nodes) {{ {outer}.oa = {agg}; }}"

    def vertex_loop(self) -> str:
        it = self.fresh("n")
        self._reducing = self.rng.choice(self.scalars)[0] if self.scalars else None
        has_push = self.rng.random() < 0.4
        if has_push:
            # race-free partition: pushes reduce into 'oa'; per-vertex writes
            # go to 'ox' only; everything reads only the stable props.
            target, op = "oa", self.rng.choice(("+=", "min=", "max="))
            writes: tuple[str, ...] = ("ox",)
            reads: tuple[str, ...] = STABLE_INT
        else:
            target, op = "", ""
            writes = ("oa", "ox")
            reads = STABLE_INT + ("oa",)
        body = []
        for _ in range(self.rng.randint(1, 3)):
            if has_push and self.rng.random() < 0.5:
                body.append(self.push_loop(it, target, op, reads))
            else:
                body.append(self.vertex_stmt(it, writes, reads))
        filt = f"[{self.bool_expr(it, STABLE_INT)}]" if self.rng.random() < 0.3 else ""
        self._reducing = None
        return f"Foreach ({it}: G.Nodes){filt} {{ " + " ".join(body) + " }"

    def seq_stmt(self) -> str:
        kind = self.rng.randrange(6)
        if kind == 0:
            name = self.fresh("s")
            t = self.rng.choice(("Int", "Double"))
            init = "0" if t == "Int" else "0.0"
            self.scalars.append((name, t, self.rng.choice(("+=", "min=", "max="))))
            return f"{t} {name} = {init};"
        if kind == 1:
            prop = self.rng.choice(("oa",))
            return f"G.{prop} = {self.rng.randint(0, 5)};"
        if kind == 2:
            return self.pull_loop_nest()
        if kind == 3:
            k = self.fresh("k")
            n = self.rng.randint(1, 3)
            return (
                f"Int {k} = 0; While ({k} < {n}) {{ "
                + self.vertex_loop()
                + f" {k}++; }}"
            )
        return self.vertex_loop()

    def build(self) -> str:
        lines = [HEADER]
        for _ in range(self.size):
            lines.append("  " + self.seq_stmt())
        result = "0.0"
        if self.scalars and self.rng.random() < 0.7:
            name, t, _ = self.rng.choice(self.scalars)
            result = f"(Double) {name}" if t == "Int" else name
        lines.append(f"  Return {result};")
        lines.append("}")
        return "\n".join(lines)


def _compare(program: str, seed: int) -> None:
    graph = uniform_random(14, 40, seed=seed % 17 + 1)
    graph.add_node_prop("a", [(v * 7) % 11 for v in range(14)])
    graph.add_node_prop("b", [(v * 3) % 5 for v in range(14)])
    graph.add_node_prop("x", [v / 4.0 for v in range(14)])

    interp = interpret(program, graph)
    compiled = compile_source(program, emit_java=False)
    run = compiled.program.run(graph)

    for name in ("oa", "ox"):
        for idx, (want, got) in enumerate(zip(interp.outputs[name], run.outputs[name])):
            assert _close(want, got), (
                f"output {name}[{idx}]: interp={want} pregel={got}\n{program}"
            )
    assert _close(interp.result, run.result), (
        f"result: interp={interp.result} pregel={run.result}\n{program}"
    )


def _close(a, b, tol=1e-9) -> bool:
    if isinstance(a, float) or isinstance(b, float):
        if a == b:
            return True
        return abs(a - b) <= tol * max(1.0, abs(a), abs(b))
    return a == b


@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    size=st.integers(min_value=1, max_value=6),
)
@settings(max_examples=120, deadline=None)
def test_random_programs_interpreter_equals_pregel(seed, size):
    program = ProgramBuilder(seed, size).build()
    try:
        compile_source(program, emit_java=False)
    except GreenMarlError:
        # the generator may produce programs the compiler legitimately
        # rejects (e.g. fission blocked by a filter dependency); those are
        # covered by targeted tests — here we only compare runnable ones.
        return
    _compare(program, seed)


def test_generator_yields_mostly_compilable_programs():
    """Guard the fuzzer's value: most generated programs must compile."""
    ok = 0
    total = 120
    for seed in range(total):
        program = ProgramBuilder(seed, 4).build()
        try:
            compile_source(program, emit_java=False)
            ok += 1
        except GreenMarlError:
            pass
    assert ok / total > 0.8, f"only {ok}/{total} programs compiled"


def test_fixed_regression_seeds():
    """A few pinned seeds stay green even if hypothesis explores elsewhere."""
    for seed, size in ((1, 4), (99, 6), (12345, 5), (777, 3), (31337, 6)):
        program = ProgramBuilder(seed, size).build()
        try:
            compile_source(program, emit_java=False)
        except GreenMarlError:
            continue
        _compare(program, seed)
