"""Type checker tests: inference results and rejected programs."""

import pytest

from repro.lang import parse_procedure
from repro.lang.errors import TypeCheckError
from repro.lang import types as ty
from repro.lang.typecheck import typecheck


def check(src: str):
    proc = parse_procedure(src)
    return proc, typecheck(proc)


def check_body(stmts: str, params: str = "G: Graph"):
    return check(f"Procedure p({params}) {{ {stmts} }}")


def expect_error(stmts: str, fragment: str, params: str = "G: Graph"):
    with pytest.raises(TypeCheckError) as err:
        check_body(stmts, params)
    assert fragment in str(err.value), str(err.value)


class TestAccepted:
    def test_all_bundled_algorithms_typecheck(self):
        from repro.algorithms.sources import ALGORITHMS, load_procedure

        for name in ALGORITHMS:
            typecheck(load_procedure(name))

    def test_numeric_widening_assignment(self):
        check_body("Double d = 3;")

    def test_ternary_joins_numeric(self):
        proc, result = check_body("Double d = True ? 1 : 2.5;")
        decl = proc.body.stmts[0]
        assert decl.init.type == ty.DOUBLE

    def test_node_equality(self):
        check_body("Node a = G.PickRandom(); Bool b = a == NIL;")

    def test_prop_access_types(self):
        proc, result = check_body(
            "Foreach (n: G.Nodes) { Int a = n.age; }", "G: Graph, age: N_P<Int>"
        )
        loop = proc.body.stmts[0]
        assert loop.body.stmts[0].init.type == ty.INT

    def test_graph_methods(self):
        proc, _ = check_body("Long n = G.NumNodes(); Node r = G.PickRandom();")
        assert proc.body.stmts[0].init.type == ty.LONG

    def test_scalars_and_properties_recorded(self):
        _, result = check_body(
            "Int s = 0; N_P<Bool> flag;", "G: Graph, age: N_P<Int>, K: Int"
        )
        assert set(result.properties) == {"age", "flag"}
        assert "s" in result.scalars and "K" in result.scalars

    def test_iterator_shadowing_scopes(self):
        # the same iterator name in two sibling loops is fine
        check_body("Foreach (n: G.Nodes) { } Foreach (n: G.Nodes) { }")

    def test_inf_assignable_to_int_prop(self):
        check_body(
            "Foreach (n: G.Nodes) { n.dist = +INF; }", "G: Graph, dist: N_P<Int>"
        )


class TestRejected:
    def test_undefined_name(self):
        expect_error("Int x = y;", "undefined name 'y'")

    def test_unknown_property(self):
        expect_error("Foreach (n: G.Nodes) { Int a = n.age; }", "unknown property")

    def test_redeclaration(self):
        expect_error("Int x = 0; Int x = 1;", "redeclaration")

    def test_duplicate_parameter(self):
        with pytest.raises(TypeCheckError):
            check("Procedure p(G: Graph, a: Int, a: Int) { }")

    def test_no_graph_parameter(self):
        with pytest.raises(TypeCheckError) as err:
            check("Procedure p(K: Int) { }")
        assert "no Graph parameter" in str(err.value)

    def test_two_graph_parameters(self):
        with pytest.raises(TypeCheckError) as err:
            check("Procedure p(G: Graph, H: Graph) { }")
        assert "multiple Graph" in str(err.value)

    def test_bool_condition_required(self):
        expect_error("If (3) { }", "must be Bool")

    def test_while_condition(self):
        expect_error("While (1) { }", "must be Bool")

    def test_filter_must_be_bool(self):
        expect_error("Foreach (n: G.Nodes)[1] { }", "must be Bool")

    def test_arithmetic_on_bool(self):
        expect_error("Int x = True + 1;", "numeric")

    def test_node_ordering_comparison(self):
        expect_error(
            "Node a = G.PickRandom(); Node b = G.PickRandom(); Bool c = a < b;",
            "ordering comparison",
        )

    def test_assign_node_to_int(self):
        expect_error("Node a = G.PickRandom(); Int x = a;", "cannot assign")

    def test_assign_to_iterator(self):
        expect_error("Foreach (n: G.Nodes) { n = n; }", "iterator")

    def test_return_type_mismatch(self):
        with pytest.raises(TypeCheckError):
            check("Procedure p(G: Graph): Int { Return G.PickRandom(); }")

    def test_return_value_without_type(self):
        expect_error("Return 3;", "no return type")

    def test_missing_return_value(self):
        with pytest.raises(TypeCheckError):
            check("Procedure p(G: Graph): Int { Return; }")

    def test_unknown_method(self):
        expect_error("Int x = G.FooBar();", "unknown method")

    def test_method_arity(self):
        expect_error("Long x = G.NumNodes(3);", "argument")

    def test_node_prop_through_edge(self):
        expect_error(
            "Foreach (n: G.Nodes) { Foreach (s: n.Nbrs) { Edge e = s.ToEdge(); Int a = e.age; } }",
            "accessed through",
            "G: Graph, age: N_P<Int>",
        )

    def test_mod_requires_integral(self):
        expect_error("Int x = 5 % 2; Double y = 1.5 % 2.0;", "integral")

    def test_bfs_root_must_be_node(self):
        expect_error("InBFS (v: G.Nodes From 3) { }", "root must be a Node")

    def test_property_initializer_rejected(self):
        expect_error("N_P<Int> p = 0;", "group assignment")

    def test_reduce_body_must_be_numeric(self):
        expect_error("Int x = Sum(u: G.Nodes){u == u};", "numeric")

    def test_exist_requires_predicate(self):
        # Exist with a numeric body is rejected at parse->filter move, so use All
        expect_error("Bool b = Exist(u: G.Nodes){1};", "must be Bool")

    def test_deferred_target_must_be_property(self):
        expect_error("Int x = 0; x <= 3;", "property access")
