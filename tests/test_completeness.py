"""Appendix A (completeness) boundary tests: programs the compiler must
reject — with precise §3.2 diagnostics — but the interpreter can still run.

The paper: "there are inherently sequential algorithms (e.g. Tarjan's SCC)
that can be described in Green-Marl but not with Pregel … the compiler
simply fails when the input program contains a pattern for which no
transformation rule is known."""

import pytest

from repro.compiler import compile_source
from repro.interp import interpret
from repro.lang.errors import NotPregelCanonicalError, GreenMarlError
from repro.pregel import Graph


SEQUENTIAL_SCAN = """
// a sequential scan over vertices: expressible in Green-Marl, not in Pregel
Procedure seq_scan(G: Graph, w: N_P<Int>): Int {
  Int best = 0;
  For (n: G.Nodes) {
    best max= n.w;
  }
  Return best;
}
"""


class TestSetCBoundary:
    def test_sequential_for_rejected_but_interpretable(self):
        with pytest.raises(NotPregelCanonicalError):
            compile_source(SEQUENTIAL_SCAN, emit_java=False)
        g = Graph.from_edges(3, [(0, 1)])
        g.add_node_prop("w", [3, 9, 4])
        assert interpret(SEQUENTIAL_SCAN, g).result == 9

    def test_random_read_rejected_with_paragraph_pointer(self):
        src = """
        Procedure p(G: Graph, ptr: N_P<Node>, v: N_P<Int>; out: N_P<Int>) {
          Foreach (n: G.Nodes) {
            Node w = n.ptr;
            n.out = w.v;
          }
        }
        """
        with pytest.raises(GreenMarlError) as err:
            compile_source(src, emit_java=False)
        assert "3.2" in str(err.value) or "random read" in str(err.value).lower()

    def test_violations_reported_with_locations(self):
        src = (
            "Procedure p(G: Graph): Int {\n"
            "  For (n: G.Nodes) { }\n"
            "  Return 0;\n"
            "}\n"
        )
        with pytest.raises(NotPregelCanonicalError) as err:
            compile_source(src, emit_java=False)
        assert "2:" in str(err.value)  # line number of the For

    def test_pregel_canonical_source_is_fixed_point(self):
        """Arrow (1) of Figure 7: the canonical form the compiler produces is
        itself accepted untouched — compiling it again applies no §4.1
        transformation rules."""
        from repro.compiler import compile_algorithm, compile_source

        first = compile_algorithm("avg_teen_cnt", emit_java=False)
        second = compile_source(first.canonical_source, emit_java=False)
        for rule in ("Flipping Edge", "Dissecting Loops", "BFS Traversal"):
            assert not second.rule_row()[rule], rule

    def test_recompiled_canonical_program_runs_identically(self):
        from repro.compiler import compile_algorithm, compile_source
        from repro.graphgen import attach_standard_props, uniform_random

        g = uniform_random(30, 120, seed=4)
        attach_standard_props(g, seed=5)
        first = compile_algorithm("avg_teen_cnt", emit_java=False)
        second = compile_source(first.canonical_source, emit_java=False)
        a = first.program.run(g, {"K": 30})
        b = second.program.run(g, {"K": 30})
        assert a.result == b.result
        assert a.outputs == b.outputs
