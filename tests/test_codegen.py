"""Code-generation tests: the executable Python backend and the GPS-style
Java emitter (§4.3 artifacts)."""

import pytest

from repro.compiler import compile_algorithm, compile_source
from repro.algorithms.sources import ALGORITHMS
from repro.pregel import Graph


class TestPythonBackend:
    def test_generated_source_is_valid_python(self):
        for name in ALGORITHMS:
            compiled = compile_algorithm(name, emit_java=False)
            compile(compiled.program.vertex_source, "<test>", "exec")

    def test_dispatch_covers_all_phases(self):
        compiled = compile_algorithm("bc_approx", emit_java=False)
        src = compiled.program.vertex_source
        for pid in compiled.ir.phases:
            assert f"def _phase_{pid}(" in src

    def test_degree_zero_vertex_does_not_divide(self):
        # sink vertices must not evaluate pg_rank/degree payloads
        compiled = compile_algorithm("pagerank", emit_java=False)
        g = Graph.from_edges(3, [(0, 2), (1, 2)])  # node 2 is a sink
        run = compiled.program.run(g, {"e": 1e-9, "d": 0.85, "max_iter": 4})
        assert all(v > 0 for v in run.outputs["pg_rank"])

    def test_missing_scalar_argument_raises(self):
        compiled = compile_algorithm("sssp", emit_java=False)
        g = Graph.from_edges(2, [(0, 1)], edge_props={"len": [1]})
        with pytest.raises(ValueError):
            compiled.program.run(g, {})

    def test_missing_edge_property_raises(self):
        compiled = compile_algorithm("sssp", emit_java=False)
        g = Graph.from_edges(2, [(0, 1)])
        with pytest.raises(ValueError):
            compiled.program.run(g, {"root": 0})

    def test_property_argument_overrides_graph_prop(self):
        compiled = compile_algorithm("avg_teen_cnt", emit_java=False)
        g = Graph.from_edges(2, [(0, 1)])
        g.add_node_prop("age", [50, 50])
        run = compiled.program.run(g, {"K": 30, "age": [15, 50]})
        assert run.outputs["teen_cnt"] == [0, 1]

    def test_wrong_property_length_raises(self):
        compiled = compile_algorithm("avg_teen_cnt", emit_java=False)
        g = Graph.from_edges(2, [(0, 1)])
        with pytest.raises(ValueError):
            compiled.program.run(g, {"K": 30, "age": [15]})

    def test_runs_are_independent(self):
        compiled = compile_algorithm("pagerank", emit_java=False)
        g = Graph.from_edges(3, [(0, 1), (1, 2), (2, 0)])
        args = {"e": 1e-9, "d": 0.85, "max_iter": 5}
        first = compiled.program.run(g, args)
        second = compiled.program.run(g, args)
        assert first.outputs["pg_rank"] == second.outputs["pg_rank"]
        assert first.metrics.messages == second.metrics.messages

    def test_gm_div_semantics(self):
        from repro.codegen.executable import gm_div

        assert gm_div(7, 2) == 3
        assert gm_div(-7, 2) == -3  # truncation toward zero, like Java
        assert gm_div(7, -2) == -3
        assert gm_div(7.0, 2) == 3.5
        assert gm_div(1, 2) == 0


class TestJavaBackend:
    def test_emits_for_all_algorithms(self):
        for name in ALGORITHMS:
            compiled = compile_algorithm(name)
            assert "public class" in compiled.java_source

    def test_balanced_braces(self):
        for name in ALGORITHMS:
            src = compile_algorithm(name).java_source
            assert src.count("{") == src.count("}"), name

    def test_message_class_has_serialization(self):
        src = compile_algorithm("pagerank").java_source
        assert "public void write(DataOutput out)" in src
        assert "public void readFields(DataInput in)" in src

    def test_tagged_message_class_switches_on_tag(self):
        src = compile_algorithm("bc_approx").java_source
        assert "byte tag;" in src
        assert "switch (tag)" in src

    def test_untagged_program_has_no_tag_field(self):
        src = compile_algorithm("pagerank").java_source
        assert "byte tag;" not in src

    def test_vertex_switch_covers_phases(self):
        compiled = compile_algorithm("sssp")
        for pid in compiled.ir.phases:
            assert f"do_state_{pid}" in compiled.java_source

    def test_master_state_machine_broadcasts_state(self):
        src = compile_algorithm("avg_teen_cnt").java_source
        assert 'putGlobal("_state"' in src
        assert "haltComputation();" in src

    def test_edge_property_send_iterates_edges(self):
        src = compile_algorithm("sssp").java_source
        assert "for (Edge edge : getOutEdges())" in src

    def test_in_nbrs_program_builds_array(self):
        src = compile_algorithm("conductance").java_source
        assert "_in_nbrs" in src


class TestCompilationResult:
    def test_rule_row_matches_table3_names(self):
        from repro.transform.pipeline import TABLE3_ROWS

        row = compile_algorithm("bc_approx", emit_java=False).rule_row()
        assert set(row) == set(TABLE3_ROWS)
        assert row["BFS Traversal"] and row["Incoming Neighbors"]

    def test_canonical_source_exposed(self):
        result = compile_algorithm("avg_teen_cnt", emit_java=False)
        assert "Foreach" in result.canonical_source

    def test_compile_source_entry_point(self):
        result = compile_source(
            "Procedure tiny(G: Graph; x: N_P<Int>) { G.x = 1; }", emit_java=False
        )
        g = Graph.from_edges(2, [(0, 1)])
        run = result.program.run(g, {})
        assert run.outputs["x"] == [1, 1]

    def test_optimization_flags_respected(self):
        plain = compile_algorithm(
            "pagerank", state_merging=False, intra_loop_merging=False, emit_java=False
        )
        merged = compile_algorithm("pagerank", emit_java=False)
        assert len(plain.ir.phases) > len(merged.ir.phases)
