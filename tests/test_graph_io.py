"""Edge-list loader hardening: every malformed input — corrupt headers,
bad vertex ids, dangling edges, torn property rows, broken sidecars —
raises :class:`GraphFormatError` pointing at the offending line, never a
bare ``ValueError`` from deep inside parsing."""

import pytest

from repro.graphgen import GraphFormatError
from repro.graphgen.io import load_edge_list, save_edge_list
from repro.pregel import Graph


def _write(tmp_path, text, name="g.txt"):
    path = tmp_path / name
    path.write_text(text)
    return path


def _error(tmp_path, text):
    path = _write(tmp_path, text)
    with pytest.raises(GraphFormatError) as err:
        load_edge_list(path)
    return path, err.value


class TestCorruptFixtures:
    def test_bad_header_count(self, tmp_path):
        path, err = _error(tmp_path, "# nodes: lots\n0 1\n")
        assert err.lineno == 1
        assert str(err).startswith(f"{path}:1:")
        assert "invalid node count 'lots'" in str(err)

    def test_negative_header_count(self, tmp_path):
        _, err = _error(tmp_path, "# nodes: -4\n")
        assert err.lineno == 1
        assert "negative node count" in str(err)

    def test_short_edge_line(self, tmp_path):
        _, err = _error(tmp_path, "# nodes: 3\n0 1\n2\n")
        assert err.lineno == 3
        assert "needs 'src dst'" in str(err)

    def test_non_integer_vertex_id(self, tmp_path):
        _, err = _error(tmp_path, "0 1\n1 two\n")
        assert err.lineno == 2
        assert "non-integer vertex id" in str(err)

    def test_float_vertex_id_rejected(self, tmp_path):
        _, err = _error(tmp_path, "0.5 1\n")
        assert err.lineno == 1

    def test_negative_vertex_id(self, tmp_path):
        _, err = _error(tmp_path, "0 1\n-1 2\n")
        assert err.lineno == 2
        assert "negative vertex id" in str(err)

    def test_dangling_edge_past_declared_count(self, tmp_path):
        _, err = _error(tmp_path, "# nodes: 3\n0 1\n1 3\n")
        assert err.lineno == 3
        assert "dangling edge 1 -> 3" in str(err)
        assert "valid ids 0..2" in str(err)

    def test_edge_prop_width_mismatch(self, tmp_path):
        _, err = _error(
            tmp_path, "# nodes: 2\n# edge-props: w cap\n0 1 3.5\n"
        )
        assert err.lineno == 3
        assert "1 property value(s)" in str(err)
        assert "declares 2" in str(err)

    def test_non_numeric_edge_prop(self, tmp_path):
        _, err = _error(
            tmp_path, "# nodes: 2\n# edge-props: w\n0 1 heavy\n"
        )
        assert err.lineno == 3
        assert "non-numeric edge-property" in str(err)

    def test_sidecar_non_numeric_value(self, tmp_path):
        path = _write(tmp_path, "# nodes: 2\n0 1\n")
        side = tmp_path / "g.txt.prop.rank"
        side.write_text("0.5\noops\n")
        with pytest.raises(GraphFormatError) as err:
            load_edge_list(path)
        assert err.value.lineno == 2
        assert str(err.value).startswith(f"{side}:2:")
        assert "node property 'rank'" in str(err.value)

    def test_sidecar_length_mismatch(self, tmp_path):
        path = _write(tmp_path, "# nodes: 3\n0 1\n1 2\n")
        (tmp_path / "g.txt.prop.rank").write_text("0.5\n0.5\n")
        with pytest.raises(GraphFormatError) as err:
            load_edge_list(path)
        assert err.value.lineno is None
        assert "2 value(s) for a 3-node graph" in str(err.value)

    def test_error_is_a_value_error(self, tmp_path):
        # callers that caught ValueError before the subclass existed still work
        path = _write(tmp_path, "0 x\n")
        with pytest.raises(ValueError):
            load_edge_list(path)


class TestWellFormedInput:
    def test_round_trip(self, tmp_path):
        graph = Graph.from_edges(
            3, [(0, 1), (1, 2), (2, 0)], edge_props={"w": [1.0, 2.0, 3.5]}
        )
        graph.add_node_prop("rank", [0.1, 0.2, 0.3])
        path = tmp_path / "g.txt"
        save_edge_list(graph, path)
        loaded = load_edge_list(path)
        assert loaded.num_nodes == 3
        assert loaded.edge_props["w"] == [1.0, 2.0, 3.5]
        assert loaded.node_props["rank"] == [0.1, 0.2, 0.3]

    def test_header_optional(self, tmp_path):
        path = _write(tmp_path, "0 1\n1 2\n")
        assert load_edge_list(path).num_nodes == 3

    def test_comments_and_blank_lines_ignored(self, tmp_path):
        path = _write(tmp_path, "# nodes: 2\n\n# a comment\n0 1\n")
        assert load_edge_list(path).num_nodes == 2
