"""Diagnostics tests: error rendering, spans, and end-to-end failure modes."""

import pytest

from repro.compiler import compile_source
from repro.lang.errors import (
    GreenMarlError,
    NotPregelCanonicalError,
    ParseError,
    Span,
    TypeCheckError,
)


class TestSpan:
    def test_merge_covers_both(self):
        a = Span(1, 2, 1, 5)
        b = Span(3, 1, 3, 4)
        merged = a.merge(b)
        assert (merged.line, merged.col) == (1, 2)
        assert (merged.end_line, merged.end_col) == (3, 4)

    def test_merge_with_unknown(self):
        a = Span(2, 3, 2, 6)
        assert a.merge(Span()) == a
        assert Span().merge(a) == a

    def test_point(self):
        p = Span.point(4, 7)
        assert p.end_col == 8

    def test_str(self):
        assert str(Span(3, 9, 3, 12)) == "3:9"
        assert str(Span()) == "<unknown>"


class TestRendering:
    def test_render_with_source_excerpt_and_caret(self):
        source = "Procedure p(G: Graph) {\n  Int x = yy;\n}"
        try:
            compile_source(source)
        except GreenMarlError as err:
            rendered = err.render(source, "prog.gm")
            assert "prog.gm:2:" in rendered
            assert "Int x = yy;" in rendered
            assert "^" in rendered
        else:
            pytest.fail("expected an error")

    def test_hint_included(self):
        err = ParseError("bad thing", Span(1, 1, 1, 2), hint="try harder")
        assert "hint: try harder" in err.render()

    def test_error_kinds(self):
        assert ParseError("x").kind() == "parse error"
        assert TypeCheckError("x").kind() == "type error"
        assert NotPregelCanonicalError("x").kind() == "not pregel-canonical"


class TestEndToEndFailures:
    def test_random_read_reported_with_paragraph_reference(self):
        source = """
        Procedure p(G: Graph, d: N_P<Int>; out: N_P<Int>) {
          Foreach (n: G.Nodes) {
            Foreach (t: n.Nbrs) {
              Node u = t;
            }
          }
        }
        """
        # inner-loop node locals are fine; random reads are not:
        bad = """
        Procedure p(G: Graph, ptr: N_P<Node>, d: N_P<Int>; out: N_P<Int>) {
          Foreach (n: G.Nodes) {
            Node w = n.ptr;
            n.out = w.d;
          }
        }
        """
        compile_source(source, emit_java=False)
        with pytest.raises(GreenMarlError) as err:
            compile_source(bad, emit_java=False)
        assert "random read" in str(err.value).lower()

    def test_pull_that_cannot_flip_is_reported(self):
        # mixed push/pull has no transformation rule
        source = """
        Procedure p(G: Graph; a: N_P<Int>, b: N_P<Int>) {
          Foreach (n: G.Nodes) {
            Foreach (t: n.Nbrs) {
              t.a += 1;
              n.b += 1;
            }
          }
        }
        """
        with pytest.raises(GreenMarlError):
            compile_source(source, emit_java=False)

    def test_graphless_procedure(self):
        with pytest.raises(TypeCheckError):
            compile_source("Procedure p(K: Int) { }")

    def test_canonical_error_lists_all_violations(self):
        source = """
        Procedure p(G: Graph): Int {
          For (n: G.Nodes) { }
          Foreach (n: G.Nodes) { Return 3; }
          Return 0;
        }
        """
        with pytest.raises(NotPregelCanonicalError) as err:
            compile_source(source)
        message = str(err.value)
        assert "sequential For" in message
        assert "Return inside a parallel loop" in message
