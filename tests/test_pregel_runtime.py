"""Pregel engine semantics: delivery timing, global-object aggregation
timing, vote-to-halt, partition metering, determinism."""

import pytest

from repro.pregel import Graph, GlobalOp, PregelEngine
from repro.pregel.globalmap import GlobalObjectMap, combine


def line_graph(n: int) -> Graph:
    return Graph.from_edges(n, [(i, i + 1) for i in range(n - 1)])


class TestMessageDelivery:
    def test_messages_arrive_exactly_next_superstep(self):
        g = line_graph(3)
        seen: dict[int, list[tuple[int, int]]] = {0: [], 1: [], 2: []}

        def vertex(ctx, vid, messages):
            for m in messages:
                seen[vid].append((ctx.superstep, m[1]))
            if ctx.superstep == 0 and vid == 0:
                ctx.send(1, (0, 99))

        def master(ctx):
            if ctx.superstep == 3:
                ctx.halt()

        PregelEngine(g, vertex, master).run()
        assert seen[1] == [(1, 99)]
        assert seen[0] == [] and seen[2] == []

    def test_undelivered_messages_are_dropped_not_accumulated(self):
        g = line_graph(2)
        received = []

        def vertex(ctx, vid, messages):
            # vertex 1 receives only in superstep 1; superstep 2's inbox must
            # not replay superstep 0's sends
            received.extend((ctx.superstep, vid, m) for m in messages)
            if ctx.superstep == 0 and vid == 0:
                ctx.send(1, (0,))

        def master(ctx):
            if ctx.superstep == 3:
                ctx.halt()

        PregelEngine(g, vertex, master).run()
        assert received == [(1, 1, (0,))]

    def test_send_to_out_nbrs(self):
        g = Graph.from_edges(4, [(0, 1), (0, 2), (0, 3)])
        hits = []

        def vertex(ctx, vid, messages):
            if ctx.superstep == 0 and vid == 0:
                ctx.send_to_out_nbrs(0, (0,))
            hits.extend([vid] * len(messages))

        def master(ctx):
            if ctx.superstep == 2:
                ctx.halt()

        PregelEngine(g, vertex, master).run()
        assert sorted(hits) == [1, 2, 3]


class TestGlobals:
    def test_vertex_puts_visible_to_master_next_superstep(self):
        g = line_graph(3)
        observed = {}

        def vertex(ctx, vid, messages):
            if ctx.superstep == 0:
                ctx.put_global("S", GlobalOp.SUM, vid + 1)

        def master(ctx):
            if ctx.superstep == 0:
                observed["at0"] = ctx.get_agg("S")
            if ctx.superstep == 1:
                observed["at1"] = ctx.get_agg("S")
                ctx.halt()

        PregelEngine(g, vertex, master).run()
        assert observed == {"at0": None, "at1": 6}

    def test_master_broadcast_visible_same_superstep(self):
        g = line_graph(2)
        got = []

        def vertex(ctx, vid, messages):
            got.append(ctx.get_global("K"))

        def master(ctx):
            ctx.put_broadcast("K", ctx.superstep * 10)
            if ctx.superstep == 2:
                ctx.halt()

        PregelEngine(g, vertex, master).run()
        assert got == [0, 0, 10, 10]

    def test_reduction_ops(self):
        for op, values, expected in [
            (GlobalOp.SUM, [1, 2, 3], 6),
            (GlobalOp.PRODUCT, [2, 3, 4], 24),
            (GlobalOp.MIN, [5, 2, 9], 2),
            (GlobalOp.MAX, [5, 2, 9], 9),
            (GlobalOp.AND, [True, False, True], False),
            (GlobalOp.OR, [False, True, False], True),
        ]:
            gmap = GlobalObjectMap()
            for v in values:
                gmap.put_reduce("x", op, v)
            gmap.end_superstep()
            assert gmap.get_aggregated("x") == expected, op

    def test_conflicting_reductions_rejected(self):
        gmap = GlobalObjectMap()
        gmap.put_reduce("x", GlobalOp.SUM, 1)
        with pytest.raises(ValueError):
            gmap.put_reduce("x", GlobalOp.MIN, 2)

    def test_overwrite_combine(self):
        assert combine(GlobalOp.OVERWRITE, 1, 2) == 2


class TestVoting:
    def test_all_halted_terminates(self):
        g = line_graph(4)

        def vertex(ctx, vid, messages):
            ctx.vote_to_halt(vid)

        metrics = PregelEngine(g, vertex, use_voting=True).run()
        assert metrics.halt_reason == "all_halted"
        assert metrics.supersteps == 1

    def test_message_reactivates(self):
        g = line_graph(4)
        active_log = []

        def vertex(ctx, vid, messages):
            active_log.append((ctx.superstep, vid))
            if ctx.superstep == 0 and vid == 0:
                ctx.send(3, (0,))
            ctx.vote_to_halt(vid)

        PregelEngine(g, vertex, use_voting=True).run()
        # superstep 1 must run exactly the reactivated vertex 3
        assert [entry for entry in active_log if entry[0] == 1] == [(1, 3)]

    def test_without_voting_all_vertices_run(self):
        g = line_graph(4)
        count = [0]

        def vertex(ctx, vid, messages):
            count[0] += 1

        def master(ctx):
            if ctx.superstep == 3:
                ctx.halt()

        PregelEngine(g, vertex, master).run()
        assert count[0] == 12


class TestMetrics:
    def test_message_and_byte_counting(self):
        g = line_graph(3)

        def vertex(ctx, vid, messages):
            if ctx.superstep == 0:
                for dst in ctx.graph.out_nbrs(vid):
                    ctx.send(dst, (0, 1.0))

        def master(ctx):
            if ctx.superstep == 2:
                ctx.halt()

        engine = PregelEngine(g, vertex, master, message_size=lambda m: 8)
        metrics = engine.run()
        assert metrics.messages == 2
        assert metrics.message_bytes == 16

    def test_cross_worker_accounting(self):
        # 0->1 and 1->2 with 2 workers: 0,2 on worker 0; 1 on worker 1.
        g = line_graph(3)

        def vertex(ctx, vid, messages):
            if ctx.superstep == 0:
                for dst in ctx.graph.out_nbrs(vid):
                    ctx.send(dst, (0,))

        def master(ctx):
            if ctx.superstep == 2:
                ctx.halt()

        engine = PregelEngine(g, vertex, master, num_workers=2, message_size=lambda m: 4)
        metrics = engine.run()
        assert metrics.messages == 2
        assert metrics.net_messages == 2  # both cross the 2-worker split

    def test_single_worker_has_no_network(self):
        g = line_graph(3)

        def vertex(ctx, vid, messages):
            if ctx.superstep == 0:
                ctx.send_to_out_nbrs(vid, (0,))

        def master(ctx):
            if ctx.superstep == 2:
                ctx.halt()

        metrics = PregelEngine(g, vertex, master, num_workers=1).run()
        assert metrics.net_messages == 0

    def test_max_supersteps_cap(self):
        g = line_graph(2)
        metrics = PregelEngine(g, lambda c, v, m: None, max_supersteps=5).run()
        assert metrics.supersteps == 5
        assert metrics.halt_reason == "max_supersteps"

    def test_per_superstep_recording(self):
        g = line_graph(2)

        def vertex(ctx, vid, messages):
            if ctx.superstep == 1 and vid == 0:
                ctx.send(1, (0,))

        def master(ctx):
            if ctx.superstep == 3:
                ctx.halt()

        engine = PregelEngine(g, vertex, master, record_per_superstep=True)
        metrics = engine.run()
        assert metrics.per_superstep_messages == [0, 1, 0]

    def test_to_dict_covers_every_field(self):
        # the JSON ledger must never silently lag behind the dataclass
        import dataclasses

        from repro.pregel.runtime import RunMetrics

        g = line_graph(3)
        metrics = PregelEngine(
            g, lambda c, v, m: None, max_supersteps=2, record_per_superstep=True
        ).run()
        ledger = metrics.to_dict()
        assert set(ledger) == {f.name for f in dataclasses.fields(RunMetrics)}
        for f in dataclasses.fields(RunMetrics):
            value = getattr(metrics, f.name)
            assert ledger[f.name] == (list(value) if isinstance(value, list) else value)
        # lists are copied, not aliased
        ledger["per_superstep_messages"].append(99)
        assert 99 not in metrics.per_superstep_messages

    def test_summary_reports_retries_when_present(self):
        from repro.pregel.runtime import RunMetrics

        metrics = RunMetrics()
        assert "retried" not in metrics.summary()
        metrics.messages_retried = 3
        metrics.retry_backoff_units = 7
        assert "retried=3" in metrics.summary()
        assert "backoff_units=7" in metrics.summary()


class TestRestorePerSuperstepRecord:
    """restore_state must keep per_superstep_messages in lockstep with the
    restored superstep counter, even when ``record_per_superstep`` was
    toggled between checkpoint and restore."""

    def _checkpoint_at(self, step: int, *, record: bool) -> dict:
        captured = {}

        def vertex(ctx, vid, messages):
            if vid == 0:
                ctx.send(1, (0,))

        def master(ctx):
            if ctx.superstep == step:
                captured["state"] = ctx.checkpoint_state()
            if ctx.superstep == step + 1:
                ctx.halt()

        PregelEngine(
            line_graph(2), vertex, master, record_per_superstep=record
        ).run()
        return captured["state"]

    def test_round_trip_with_recording_on_both_sides(self):
        state = self._checkpoint_at(3, record=True)
        assert len(state["per_superstep_messages"]) == 3
        twin = PregelEngine(
            line_graph(2), lambda c, v, m: None, record_per_superstep=True
        )
        twin.restore_state(state)
        assert twin.metrics.per_superstep_messages == state["per_superstep_messages"]

    def test_recording_enabled_after_checkpoint_pads_with_zeros(self):
        # checkpoint written without recording → restore into a recording
        # engine pads the unknown early supersteps so later appends land at
        # the right index
        state = self._checkpoint_at(3, record=False)
        assert state["per_superstep_messages"] == []
        twin = PregelEngine(
            line_graph(2), lambda c, v, m: None, record_per_superstep=True
        )
        twin.restore_state(state)
        assert twin.metrics.per_superstep_messages == [0, 0, 0]

    def test_recording_disabled_after_checkpoint_keeps_saved_record(self):
        state = self._checkpoint_at(2, record=True)
        twin = PregelEngine(line_graph(2), lambda c, v, m: None)
        twin.restore_state(state)
        assert twin.metrics.per_superstep_messages == state["per_superstep_messages"]

    def test_impossible_record_length_raises(self):
        state = self._checkpoint_at(2, record=True)
        state["per_superstep_messages"] = [1, 2, 3, 4]  # > superstep: corrupt
        twin = PregelEngine(
            line_graph(2), lambda c, v, m: None, record_per_superstep=True
        )
        with pytest.raises(ValueError, match="more entries than completed"):
            twin.restore_state(state)


class TestDeterminism:
    def test_same_seed_same_random_sequence(self):
        g = line_graph(5)
        picks = []

        def master(ctx):
            picks.append(ctx.pick_random_node())
            if ctx.superstep == 4:
                ctx.halt()

        PregelEngine(g, lambda c, v, m: None, master, seed=7).run()
        first = list(picks)
        picks.clear()
        PregelEngine(g, lambda c, v, m: None, master, seed=7).run()
        assert picks == first

    def test_message_order_is_sender_id_order(self):
        g = Graph.from_edges(4, [(2, 3), (0, 3), (1, 3)])
        order = []

        def vertex(ctx, vid, messages):
            if ctx.superstep == 0:
                ctx.send_to_out_nbrs(vid, (0, vid))
            order.extend(m[1] for m in messages)

        def master(ctx):
            if ctx.superstep == 2:
                ctx.halt()

        PregelEngine(g, vertex, master).run()
        assert order == [0, 1, 2]


class TestWorkerLoad:
    def test_worker_sent_sums_to_messages(self):
        g = line_graph(6)

        def vertex(ctx, vid, messages):
            if ctx.superstep == 0:
                ctx.send_to_out_nbrs(vid, (0,))

        def master(ctx):
            if ctx.superstep == 2:
                ctx.halt()

        metrics = PregelEngine(g, vertex, master, num_workers=3).run()
        assert sum(metrics.worker_sent) == metrics.messages == 5
        assert len(metrics.worker_sent) == 3

    def test_load_imbalance_balanced(self):
        from repro.pregel.runtime import RunMetrics

        m = RunMetrics(worker_sent=[10, 10, 10, 10])
        assert m.load_imbalance() == 1.0

    def test_load_imbalance_skewed(self):
        from repro.pregel.runtime import RunMetrics

        m = RunMetrics(worker_sent=[30, 0, 0, 10])
        assert m.load_imbalance() == 3.0

    def test_load_imbalance_empty_run(self):
        from repro.pregel.runtime import RunMetrics

        assert RunMetrics(worker_sent=[0, 0]).load_imbalance() == 1.0
        assert RunMetrics().load_imbalance() == 1.0


class TestPartitioning:
    def _run_net(self, partitioning: str) -> int:
        # 0->1, 2->3 with 2 workers: range keeps both edges local,
        # hash crosses on both.
        g = Graph.from_edges(4, [(0, 1), (2, 3)])

        def vertex(ctx, vid, messages):
            if ctx.superstep == 0:
                ctx.send_to_out_nbrs(vid, (0,))

        def master(ctx):
            if ctx.superstep == 2:
                ctx.halt()

        engine = PregelEngine(
            g, vertex, master, num_workers=2, partitioning=partitioning
        )
        return engine.run().net_messages

    def test_range_keeps_local_edges_local(self):
        assert self._run_net("range") == 0

    def test_hash_crosses_on_adjacent_ids(self):
        assert self._run_net("hash") == 2

    def test_unknown_partitioning_rejected(self):
        g = Graph.from_edges(2, [(0, 1)])
        with pytest.raises(ValueError):
            PregelEngine(g, lambda c, v, m: None, partitioning="metis")

    def test_range_covers_all_workers(self):
        g = Graph.from_edges(10, [])
        engine = PregelEngine(g, lambda c, v, m: None, num_workers=3,
                              partitioning="range")
        assert sorted(set(engine._worker_of)) == [0, 1, 2]

    def test_results_independent_of_partitioning(self):
        from repro.compiler import compile_algorithm
        from repro.graphgen import attach_standard_props, uniform_random

        g = uniform_random(30, 120, seed=13)
        attach_standard_props(g, seed=14)
        compiled = compile_algorithm("pagerank", emit_java=False)
        args = {"e": 1e-10, "d": 0.85, "max_iter": 6}
        a = compiled.program.run(g, args, partitioning="hash")
        b = compiled.program.run(g, args, partitioning="range")
        assert a.outputs["pg_rank"] == b.outputs["pg_rank"]
        assert a.metrics.messages == b.metrics.messages
        assert a.metrics.net_messages != b.metrics.net_messages or True


class TestMakespan:
    def _engine(self, track=True, workers=2):
        g = Graph.from_edges(4, [(0, 1), (0, 2), (0, 3)])

        def vertex(ctx, vid, messages):
            if ctx.superstep == 0 and vid == 0:
                ctx.send_to_out_nbrs(0, (0,))

        def master(ctx):
            if ctx.superstep == 2:
                ctx.halt()

        return PregelEngine(
            g, vertex, master, num_workers=workers, track_makespan=track
        )

    def test_disabled_by_default(self):
        metrics = self._engine(track=False).run()
        assert metrics.makespan_units == 0
        assert metrics.makespan_inflation() == 1.0

    def test_units_counted(self):
        # superstep 0: 4 computes + 3 sends + 3 receive-units;
        # superstep 1: 4 computes.  Worker split (hash, 2 workers):
        # worker0={0,2}, worker1={1,3}.
        metrics = self._engine().run()
        assert metrics.makespan_units > 0
        assert metrics.ideal_units > 0
        assert metrics.makespan_units >= metrics.ideal_units

    def test_single_worker_has_no_inflation(self):
        metrics = self._engine(workers=1).run()
        assert abs(metrics.makespan_inflation() - 1.0) < 1e-9

    def test_skew_inflates_makespan(self):
        from repro.compiler import compile_algorithm
        from repro.graphgen import load_graph

        args = {"e": 1e-9, "d": 0.85, "max_iter": 5}
        compiled = compile_algorithm("pagerank", emit_java=False)
        skewed = compiled.program.run(
            load_graph("twitter", 0.25), args, num_workers=8, track_makespan=True
        )
        uniform = compiled.program.run(
            load_graph("bipartite", 0.25), args, num_workers=8, track_makespan=True
        )
        assert skewed.metrics.makespan_inflation() > 1.5
        assert uniform.metrics.makespan_inflation() < 1.2
