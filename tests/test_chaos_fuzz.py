"""Seeded chaos fuzz: randomized loss × dup × reorder × crash matrices.

Each seed deterministically expands into a fault mix (``draw_case``); the
case runs against a clean baseline of the same workload and must come back
bit-identical with internally-consistent fault counters (``run_case``).

The quick slice below is tier-1.  The ISSUE's ~50-seed sweep is
``@pytest.mark.slow`` and opt-in via ``REPRO_CHAOS=1`` (the CI ``chaos``
job runs it); locally:

    REPRO_CHAOS=1 PYTHONPATH=src python -m pytest -m slow tests/test_chaos_fuzz.py
"""

import dataclasses
import os

import pytest

from repro.bench.chaos import chaos_matrix, chaos_report, draw_case, run_case

QUICK_SEEDS = range(8)
SWEEP_SEEDS = range(50)


def _assert_all_ok(results):
    bad = [r for r in results if not r.ok]
    assert not bad, "\n" + chaos_report(bad)


def test_draw_case_is_deterministic():
    assert draw_case(17) == draw_case(17)
    # the matrix rotates algorithm and recovery across seeds
    assert {draw_case(s).algorithm for s in range(8)} == {
        "pagerank", "sssp", "bipartite_matching", "bc_approx"
    }
    assert {draw_case(s).recovery for s in range(8)} == {"rollback", "confined"}


def test_some_seeds_draw_crashes_and_faults():
    cases = [draw_case(s) for s in SWEEP_SEEDS]
    assert any(c.crash is not None for c in cases)
    assert any(c.crash is None for c in cases)
    assert any(c.net_plan.drop_rate > 0 for c in cases)
    assert any(not c.net_plan.lossy for c in cases)


def test_quick_matrix():
    _assert_all_ok(chaos_matrix(QUICK_SEEDS, scale=0.25))


@pytest.mark.slow
@pytest.mark.skipif(
    not os.environ.get("REPRO_CHAOS"),
    reason="long sweep; set REPRO_CHAOS=1 to enable",
)
def test_full_sweep():
    results = chaos_matrix(SWEEP_SEEDS, scale=0.25)
    # the long sweep must exercise both halves of the matrix for real
    assert sum(r.detected for r in results) >= 10
    assert sum(r.messages_dropped > 0 for r in results) >= 10
    _assert_all_ok(results)


@pytest.mark.slow
@pytest.mark.skipif(
    not os.environ.get("REPRO_CHAOS"),
    reason="long sweep; set REPRO_CHAOS=1 to enable",
)
def test_tight_budget_slice():
    # every drawn fault mix re-run under one tight per-worker budget: the
    # memory machinery must actually fire somewhere in the slice, and every
    # case still comes back bit-identical to its clean baseline
    results = [
        run_case(
            dataclasses.replace(draw_case(seed), mem_budget=1 << 16),
            scale=0.25,
        )
        for seed in range(12)
    ]
    assert any(r.spilled_bytes > 0 or r.superstep_splits > 0 for r in results)
    _assert_all_ok(results)


@pytest.mark.slow
@pytest.mark.skipif(
    not os.environ.get("REPRO_CHAOS"),
    reason="long sweep; set REPRO_CHAOS=1 to enable",
)
def test_hostile_rates_sweep():
    # crank every rate toward the validation ceiling on a handful of seeds
    for seed in range(60, 66):
        result = run_case(draw_case(seed, max_rate=0.6), scale=0.25)
        assert result.ok, result.violations
