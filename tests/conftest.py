"""Shared fixtures: small deterministic graphs with standard properties."""

from __future__ import annotations

import random

import pytest

from repro.graphgen import attach_standard_props, bipartite, twitter_like, uniform_random
from repro.pregel import Graph


def make_random_graph(num_nodes: int, num_edges: int, seed: int) -> Graph:
    graph = uniform_random(num_nodes, num_edges, seed=seed)
    attach_standard_props(graph, seed=seed + 1)
    return graph


@pytest.fixture(scope="session")
def small_graph() -> Graph:
    """60 nodes / ~240 edges with age/member/len properties."""
    return make_random_graph(60, 240, seed=11)


@pytest.fixture(scope="session")
def tiny_graph() -> Graph:
    """A fixed 6-node graph for hand-checkable assertions."""
    edges = [(0, 1), (0, 2), (1, 2), (2, 3), (3, 4), (4, 1), (1, 5), (5, 0)]
    graph = Graph.from_edges(6, edges, edge_props={"len": [3, 1, 4, 1, 5, 9, 2, 6]})
    graph.add_node_prop("age", [15, 40, 17, 55, 19, 30])
    graph.add_node_prop("member", [1, 0, 1, 1, 0, 0])
    return graph


@pytest.fixture(scope="session")
def bipartite_graph() -> Graph:
    return bipartite(25, 25, num_edges=120, seed=3)


@pytest.fixture(scope="session")
def skewed_graph() -> Graph:
    graph = twitter_like(200, avg_degree=8, seed=5)
    attach_standard_props(graph, seed=6)
    return graph
