"""Optimization tests (§4.2): state merging and intra-loop state merging —
both the structural effect (fewer supersteps) and semantic preservation."""

import pytest

from repro.compiler import compile_algorithm, compile_source
from repro.graphgen import attach_standard_props, uniform_random
from repro.lang import parse_procedure
from repro.pregelir.ir import MVPhase
from repro.transform import to_canonical
from repro.translate import translate
from repro.translate.merge import merge_intra_loop, merge_states, optimize


def ir_for(src_or_name: str, *, algorithm: bool = False):
    if algorithm:
        from repro.algorithms.sources import load_procedure

        canonical = to_canonical(load_procedure(src_or_name))
    else:
        canonical = to_canonical(parse_procedure(src_or_name))
    return translate(canonical), canonical.rules


def graph():
    g = uniform_random(50, 200, seed=9)
    attach_standard_props(g, seed=10)
    return g


class TestStateMerging:
    def test_consecutive_compute_phases_merge(self):
        ir, rules = ir_for(
            """
            Procedure p(G: Graph; a: N_P<Int>, b: N_P<Int>) {
              Foreach (n: G.Nodes) { n.a = 1; }
              Foreach (n: G.Nodes) { n.b = 2; }
            }
            """
        )
        assert merge_states(ir, rules) == 1
        assert len(ir.phases) == 1
        assert "State Merging" in rules.applied

    def test_receive_phase_never_merges_into_its_sender(self):
        ir, rules = ir_for(
            """
            Procedure p(G: Graph, bar: N_P<Int>; foo: N_P<Int>) {
              Foreach (n: G.Nodes) {
                Foreach (t: n.Nbrs) { t.foo += n.bar; }
              }
            }
            """
        )
        merge_states(ir, rules)
        assert len(ir.phases) == 2  # send | receive barrier preserved

    def test_receive_merges_with_following_compute(self):
        ir, rules = ir_for(
            """
            Procedure p(G: Graph, bar: N_P<Int>; foo: N_P<Int>, out: N_P<Int>) {
              Foreach (n: G.Nodes) {
                Foreach (t: n.Nbrs) { t.foo += n.bar; }
              }
              Foreach (n: G.Nodes) { n.out = n.foo; }
            }
            """
        )
        merge_states(ir, rules)
        assert len(ir.phases) == 2
        recv = next(p for p in ir.phases.values() if p.receive)
        assert recv.compute  # the copy loop was folded in

    def test_merge_blocked_when_next_reads_finalized_global(self):
        ir, rules = ir_for(
            """
            Procedure p(G: Graph, w: N_P<Int>; out: N_P<Int>) {
              Int s = 0;
              Foreach (n: G.Nodes) { s += n.w; }
              Foreach (n: G.Nodes) { n.out = s; }
            }
            """
        )
        merge_states(ir, rules)
        # second loop reads broadcast `s`, which is finalized between the
        # phases: they must stay in separate supersteps.
        assert len(ir.phases) == 2

    def test_avgteen_collapses_to_two_phases(self):
        ir, rules = ir_for("avg_teen_cnt", algorithm=True)
        merge_states(ir, rules)
        assert len(ir.phases) == 2


class TestIntraLoopMerging:
    def test_pagerank_one_phase_per_iteration(self):
        ir, rules = ir_for("pagerank", algorithm=True)
        merge_states(ir, rules)
        assert merge_intra_loop(ir, rules) == 1
        assert "Intra-Loop Merge" in rules.applied
        # the loop body now yields exactly one phase
        phases_in_code = [i for i in ir.master_code if isinstance(i, MVPhase)]
        assert len({i.phase for i in phases_in_code}) == len(ir.phases)

    def test_flag_field_added(self):
        ir, rules = ir_for("pagerank", algorithm=True)
        merge_states(ir, rules)
        merge_intra_loop(ir, rules)
        assert any(name.startswith("_is_first") for name in ir.master_fields)

    def test_sssp_supersteps_drop(self):
        g = graph()
        full = compile_algorithm("sssp", emit_java=False)
        plain = compile_algorithm(
            "sssp", intra_loop_merging=False, emit_java=False
        )
        args = {"root": 0}
        m_full = full.program.run(g, args).metrics
        m_plain = plain.program.run(g, args).metrics
        assert m_full.supersteps < m_plain.supersteps

    def test_not_applied_without_loop(self):
        ir, rules = ir_for("avg_teen_cnt", algorithm=True)
        merge_states(ir, rules)
        assert merge_intra_loop(ir, rules) == 0


class TestSemanticPreservation:
    """Optimized and unoptimized programs must compute identical results."""

    CONFIGS = [
        dict(state_merging=False, intra_loop_merging=False),
        dict(state_merging=True, intra_loop_merging=False),
        dict(state_merging=True, intra_loop_merging=True),
    ]

    @pytest.mark.parametrize("name,args", [
        ("pagerank", {"e": 1e-10, "d": 0.85, "max_iter": 8}),
        ("avg_teen_cnt", {"K": 30}),
        ("conductance", {"num": 1}),
        ("sssp", {"root": 0}),
        ("bc_approx", {"K": 2}),
    ])
    def test_results_invariant_under_optimization(self, name, args):
        g = graph()
        baseline = None
        for config in self.CONFIGS:
            compiled = compile_algorithm(name, emit_java=False, **config)
            run = compiled.program.run(g, args, seed=23)
            snapshot = (run.result, {k: tuple(v) for k, v in run.outputs.items()})
            if baseline is None:
                baseline = snapshot
            else:
                assert _close(snapshot, baseline), (name, config)

    def test_bipartite_results_invariant(self, bipartite_graph):
        baseline = None
        for config in self.CONFIGS:
            compiled = compile_algorithm("bipartite_matching", emit_java=False, **config)
            run = compiled.program.run(bipartite_graph, {}, seed=23)
            snapshot = (run.result, tuple(run.outputs["match"]))
            if baseline is None:
                baseline = snapshot
            else:
                assert snapshot == baseline, config

    def test_message_counts_invariant_modulo_dangling(self):
        # Intra-loop merging sends one extra round of dangling messages; the
        # message count may only grow by at most one round's worth.
        g = graph()
        args = {"e": 1e-10, "d": 0.85, "max_iter": 6}
        plain = compile_algorithm(
            "pagerank", intra_loop_merging=False, emit_java=False
        ).program.run(g, args).metrics
        merged = compile_algorithm("pagerank", emit_java=False).program.run(g, args).metrics
        per_round = g.num_edges
        assert plain.messages <= merged.messages <= plain.messages + per_round


def _close(a, b, tol=1e-9):
    ra, oa = a
    rb, ob = b
    if not _scalar_close(ra, rb, tol):
        return False
    for key in oa:
        for x, y in zip(oa[key], ob[key]):
            if not _scalar_close(x, y, tol):
                return False
    return True


def _scalar_close(x, y, tol):
    if x is None and y is None:
        return True
    if isinstance(x, float) or isinstance(y, float):
        if x == y:
            return True
        return abs(x - y) <= tol * max(1.0, abs(x), abs(y))
    return x == y
