"""Lexer unit tests: token kinds, operator disambiguation, trivia, errors."""

import pytest

from repro.lang.errors import LexError
from repro.lang.lexer import tokenize
from repro.lang.tokens import TokenKind


def kinds(source: str) -> list[TokenKind]:
    return [t.kind for t in tokenize(source)][:-1]  # drop EOF


def texts(source: str) -> list[str]:
    return [t.text for t in tokenize(source)][:-1]


class TestBasicTokens:
    def test_identifiers_and_keywords(self):
        assert kinds("Procedure foo If While") == [
            TokenKind.KW_PROCEDURE,
            TokenKind.IDENT,
            TokenKind.KW_IF,
            TokenKind.KW_WHILE,
        ]

    def test_proc_alias(self):
        assert kinds("Proc") == [TokenKind.KW_PROCEDURE]

    def test_underscore_identifiers(self):
        assert kinds("_tmp _gm_p0") == [TokenKind.IDENT, TokenKind.IDENT]

    def test_integer_literal(self):
        tok = tokenize("42")[0]
        assert tok.kind is TokenKind.INT_LIT
        assert tok.text == "42"

    def test_float_literals(self):
        assert kinds("1.5 0.0 2e3 1.5e-2") == [TokenKind.FLOAT_LIT] * 4

    def test_integer_followed_by_dot_method(self):
        # "1.5" is a float but "G.Nodes" must stay IDENT DOT IDENT
        assert kinds("G.Nodes") == [TokenKind.IDENT, TokenKind.DOT, TokenKind.IDENT]

    def test_bool_and_nil_literals(self):
        assert kinds("True False NIL INF") == [
            TokenKind.KW_TRUE,
            TokenKind.KW_FALSE,
            TokenKind.KW_NIL,
            TokenKind.KW_INF,
        ]

    def test_type_keywords(self):
        assert kinds("Int Long Float Double Bool Graph Node Edge N_P E_P") == [
            TokenKind.KW_INT,
            TokenKind.KW_LONG,
            TokenKind.KW_FLOAT,
            TokenKind.KW_DOUBLE,
            TokenKind.KW_BOOL,
            TokenKind.KW_GRAPH,
            TokenKind.KW_NODE,
            TokenKind.KW_EDGE,
            TokenKind.KW_NODE_PROP,
            TokenKind.KW_EDGE_PROP,
        ]

    def test_node_prop_spelling_alias(self):
        assert kinds("Node_Prop Edge_Prop") == [
            TokenKind.KW_NODE_PROP,
            TokenKind.KW_EDGE_PROP,
        ]


class TestOperators:
    def test_two_char_operators(self):
        assert kinds("== != <= >= && || += *= &= |= ++") == [
            TokenKind.EQ,
            TokenKind.NEQ,
            TokenKind.LE,
            TokenKind.GE,
            TokenKind.AND_OP,
            TokenKind.OR_OP,
            TokenKind.PLUS_ASSIGN,
            TokenKind.TIMES_ASSIGN,
            TokenKind.AND_ASSIGN,
            TokenKind.OR_ASSIGN,
            TokenKind.INCR,
        ]

    def test_min_max_assign(self):
        assert kinds("x min= y") == [TokenKind.IDENT, TokenKind.MIN_ASSIGN, TokenKind.IDENT]
        assert kinds("x max= y") == [TokenKind.IDENT, TokenKind.MAX_ASSIGN, TokenKind.IDENT]

    def test_min_not_followed_by_assign_is_ident(self):
        assert kinds("min + max") == [TokenKind.IDENT, TokenKind.PLUS, TokenKind.IDENT]

    def test_min_equality_comparison_is_not_min_assign(self):
        # `min == 3` must lex as IDENT EQ INT, not MIN_ASSIGN ASSIGN
        assert kinds("min == 3") == [TokenKind.IDENT, TokenKind.EQ, TokenKind.INT_LIT]

    def test_single_bar_is_abs_delimiter(self):
        assert kinds("|x|") == [TokenKind.BAR, TokenKind.IDENT, TokenKind.BAR]

    def test_double_bar_is_logical_or(self):
        assert kinds("a || b") == [TokenKind.IDENT, TokenKind.OR_OP, TokenKind.IDENT]

    def test_le_vs_lt(self):
        assert kinds("a <= b < c") == [
            TokenKind.IDENT,
            TokenKind.LE,
            TokenKind.IDENT,
            TokenKind.LT,
            TokenKind.IDENT,
        ]

    def test_at_binding(self):
        assert kinds("x += 1 @ n") == [
            TokenKind.IDENT,
            TokenKind.PLUS_ASSIGN,
            TokenKind.INT_LIT,
            TokenKind.AT,
            TokenKind.IDENT,
        ]


class TestTrivia:
    def test_line_comment(self):
        assert kinds("a // comment here\nb") == [TokenKind.IDENT, TokenKind.IDENT]

    def test_block_comment(self):
        assert kinds("a /* multi\nline */ b") == [TokenKind.IDENT, TokenKind.IDENT]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            tokenize("a /* never closed")

    def test_whitespace_variants(self):
        assert kinds("a\t b\r\n c") == [TokenKind.IDENT] * 3


class TestSpans:
    def test_line_and_column_tracking(self):
        tokens = tokenize("ab\n  cd")
        assert tokens[0].span.line == 1 and tokens[0].span.col == 1
        assert tokens[1].span.line == 2 and tokens[1].span.col == 3

    def test_span_covers_token(self):
        tok = tokenize("hello")[0]
        assert tok.span.end_col == 6


class TestErrors:
    def test_unexpected_character(self):
        with pytest.raises(LexError) as err:
            tokenize("a $ b")
        assert "$" in str(err.value)

    def test_error_location(self):
        with pytest.raises(LexError) as err:
            tokenize("abc\n  $")
        assert err.value.span.line == 2
