"""CLI tests: every subcommand exercised through ``main(argv)``."""

import pytest

from repro.algorithms.sources import source_path
from repro.cli import main


def gm(name: str) -> str:
    return str(source_path(name))


class TestCompileCommand:
    def test_emit_states(self, capsys):
        assert main(["compile", gm("pagerank"), "--emit", "states"]) == 0
        out = capsys.readouterr().out
        assert "PregelIR pagerank" in out
        assert "applied rules" in out

    def test_emit_java(self, capsys):
        assert main(["compile", gm("sssp"), "--emit", "java"]) == 0
        assert "public class Sssp" in capsys.readouterr().out

    def test_emit_canonical(self, capsys):
        assert main(["compile", gm("avg_teen_cnt"), "--emit", "canonical"]) == 0
        assert "Foreach" in capsys.readouterr().out

    def test_emit_python(self, capsys):
        assert main(["compile", gm("bc_approx"), "--emit", "python"]) == 0
        assert "def vertex_compute" in capsys.readouterr().out

    def test_optimization_flags(self, capsys):
        main(["compile", gm("pagerank"), "--emit", "states"])
        merged = capsys.readouterr().out
        main(["compile", gm("pagerank"), "--emit", "states", "--no-intra-loop", "--no-state-merging"])
        plain = capsys.readouterr().out
        assert plain.count("phase") > merged.count("phase")

    def test_bad_program_reports_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.gm"
        bad.write_text(
            "Procedure p(G: Graph): Int { Foreach (n: G.Nodes) { Return 1; } }"
        )
        assert main(["compile", str(bad)]) == 1
        assert "not pregel-canonical" in capsys.readouterr().err


class TestRunCommand:
    def test_run_avg_teen(self, capsys):
        code = main(
            ["run", gm("avg_teen_cnt"), "--arg", "K=30", "--scale", "0.05"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "result:" in out and "output teen_cnt" in out

    def test_run_on_edge_list_file(self, tmp_path, capsys):
        from repro.graphgen import load_graph, save_edge_list

        path = tmp_path / "g.txt"
        save_edge_list(load_graph("twitter", 0.05), path)
        code = main(["run", gm("pagerank"), "--graph-file", str(path),
                     "--arg", "e=1e-9", "--arg", "d=0.85", "--arg", "max_iter=3"])
        assert code == 0
        assert "metrics:" in capsys.readouterr().out


class TestInterpCommand:
    def test_interp_matches_run(self, capsys):
        main(["interp", gm("avg_teen_cnt"), "--arg", "K=30", "--scale", "0.05"])
        interp_out = capsys.readouterr().out
        main(["run", gm("avg_teen_cnt"), "--arg", "K=30", "--scale", "0.05"])
        run_out = capsys.readouterr().out
        interp_result = next(l for l in interp_out.splitlines() if l.startswith("result:"))
        run_result = next(l for l in run_out.splitlines() if l.startswith("result:"))
        assert interp_result == run_result


class TestArgParsing:
    def test_value_types(self, capsys):
        # booleans, ints and floats all parse
        code = main(["run", gm("pagerank"), "--scale", "0.05",
                     "--arg", "e=0.001", "--arg", "d=0.85", "--arg", "max_iter=2"])
        assert code == 0

    def test_malformed_arg(self):
        with pytest.raises(SystemExit):
            main(["run", gm("pagerank"), "--arg", "notanassignment"])
