"""CLI tests: every subcommand exercised through ``main(argv)``."""

import pytest

from repro.algorithms.sources import source_path
from repro.cli import main


def gm(name: str) -> str:
    return str(source_path(name))


class TestCompileCommand:
    def test_emit_states(self, capsys):
        assert main(["compile", gm("pagerank"), "--emit", "states"]) == 0
        out = capsys.readouterr().out
        assert "PregelIR pagerank" in out
        assert "applied rules" in out

    def test_emit_java(self, capsys):
        assert main(["compile", gm("sssp"), "--emit", "java"]) == 0
        assert "public class Sssp" in capsys.readouterr().out

    def test_emit_canonical(self, capsys):
        assert main(["compile", gm("avg_teen_cnt"), "--emit", "canonical"]) == 0
        assert "Foreach" in capsys.readouterr().out

    def test_emit_python(self, capsys):
        assert main(["compile", gm("bc_approx"), "--emit", "python"]) == 0
        assert "def vertex_compute" in capsys.readouterr().out

    def test_optimization_flags(self, capsys):
        main(["compile", gm("pagerank"), "--emit", "states"])
        merged = capsys.readouterr().out
        main(["compile", gm("pagerank"), "--emit", "states", "--no-intra-loop", "--no-state-merging"])
        plain = capsys.readouterr().out
        assert plain.count("phase") > merged.count("phase")

    def test_bad_program_reports_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.gm"
        bad.write_text(
            "Procedure p(G: Graph): Int { Foreach (n: G.Nodes) { Return 1; } }"
        )
        assert main(["compile", str(bad)]) == 1
        assert "not pregel-canonical" in capsys.readouterr().err


class TestRunCommand:
    def test_run_avg_teen(self, capsys):
        code = main(
            ["run", gm("avg_teen_cnt"), "--arg", "K=30", "--scale", "0.05"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "result:" in out and "output teen_cnt" in out

    def test_run_on_edge_list_file(self, tmp_path, capsys):
        from repro.graphgen import load_graph, save_edge_list

        path = tmp_path / "g.txt"
        save_edge_list(load_graph("twitter", 0.05), path)
        code = main(["run", gm("pagerank"), "--graph-file", str(path),
                     "--arg", "e=1e-9", "--arg", "d=0.85", "--arg", "max_iter=3"])
        assert code == 0
        assert "metrics:" in capsys.readouterr().out


class TestObservabilityFlags:
    ARGS = ["--scale", "0.05", "--arg", "e=1e-9", "--arg", "d=0.85", "--arg", "max_iter=3"]

    def test_metrics_json_is_the_complete_ledger(self, tmp_path):
        import dataclasses
        import json

        from repro.pregel.runtime import RunMetrics

        path = tmp_path / "metrics.json"
        code = main(["run", gm("pagerank"), *self.ARGS, "--metrics-json", str(path)])
        assert code == 0
        ledger = json.loads(path.read_text())
        assert set(ledger) == {f.name for f in dataclasses.fields(RunMetrics)}
        assert ledger["supersteps"] > 0 and ledger["halt_reason"]

    def test_trace_writes_jsonl_event_log(self, tmp_path):
        from repro.obs import load_jsonl

        path = tmp_path / "trace.jsonl"
        code = main(["run", gm("pagerank"), *self.ARGS, "--trace", str(path)])
        assert code == 0
        events = load_jsonl(path)
        names = [e["name"] for e in events]
        # one coherent timeline: compiler passes, then the engine's run
        assert "compile.pass" in names and "compile.rules" in names
        assert "run.begin" in names and "superstep" in names and "run.end" in names
        assert names.index("compile.rules") < names.index("run.begin")

    def test_trace_chrome_writes_valid_trace_json(self, tmp_path):
        import json

        path = tmp_path / "trace.json"
        code = main(["run", gm("pagerank"), *self.ARGS, "--trace-chrome", str(path)])
        assert code == 0
        doc = json.loads(path.read_text())
        assert doc["traceEvents"]
        assert any(e["ph"] == "X" for e in doc["traceEvents"])

    def test_trace_subcommand_prints_timeline(self, capsys):
        code = main(["trace", gm("pagerank"), *self.ARGS])
        assert code == 0
        out = capsys.readouterr().out
        assert "step" in out and "vertex ms" in out and "mode" in out
        assert "metrics:" in out

    def test_profile_subcommand_prints_worker_loads(self, capsys):
        code = main(["profile", gm("pagerank"), *self.ARGS, "--workers", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "per-worker totals" in out
        assert "compute ms" in out and "share" in out
        # one row per worker: the totals table has header + rule + 3 rows
        table = out.split("per-worker totals ==\n")[1].splitlines()
        assert [row.split()[0] for row in table[2:5]] == ["0", "1", "2"]

    def test_traced_faulted_run(self, tmp_path):
        # tracing composes with fault injection on the CLI
        from repro.obs import load_jsonl

        path = tmp_path / "trace.jsonl"
        code = main(
            [
                "run",
                gm("pagerank"),
                *self.ARGS,
                "--checkpoint-every",
                "2",
                "--inject-fault",
                "1@3",
                "--trace",
                str(path),
            ]
        )
        assert code == 0
        names = [e["name"] for e in load_jsonl(path)]
        assert "ft.checkpoint" in names and "ft.crash" in names and "ft.recovery" in names


class TestInterpCommand:
    def test_interp_matches_run(self, capsys):
        main(["interp", gm("avg_teen_cnt"), "--arg", "K=30", "--scale", "0.05"])
        interp_out = capsys.readouterr().out
        main(["run", gm("avg_teen_cnt"), "--arg", "K=30", "--scale", "0.05"])
        run_out = capsys.readouterr().out
        interp_result = next(l for l in interp_out.splitlines() if l.startswith("result:"))
        run_result = next(l for l in run_out.splitlines() if l.startswith("result:"))
        assert interp_result == run_result


class TestArgParsing:
    def test_value_types(self, capsys):
        # booleans, ints and floats all parse
        code = main(["run", gm("pagerank"), "--scale", "0.05",
                     "--arg", "e=0.001", "--arg", "d=0.85", "--arg", "max_iter=2"])
        assert code == 0

    def test_malformed_arg(self):
        with pytest.raises(SystemExit):
            main(["run", gm("pagerank"), "--arg", "notanassignment"])


PAGERANK_ARGS = ["--arg", "e=1e-9", "--arg", "d=0.85", "--arg", "max_iter=3"]


def _usage_error(capsys, argv) -> str:
    """Run argv, assert the exit-2 one-line contract, return the message."""
    with pytest.raises(SystemExit) as err:
        main(argv)
    assert err.value.code == 2
    stderr = capsys.readouterr().err
    assert stderr.startswith("gm-pregel: error:")
    assert stderr.count("\n") == 1  # one line, no traceback
    return stderr


class TestUsageErrors:
    """Malformed flags die with exit code 2 and a one-line message."""

    def test_malformed_inject_fault(self, capsys):
        msg = _usage_error(
            capsys,
            ["run", gm("pagerank"), *PAGERANK_ARGS, "--scale", "0.05",
             "--checkpoint-every", "2", "--inject-fault", "banana"],
        )
        assert "--inject-fault" in msg

    @pytest.mark.parametrize("scale", ["0", "-1", "17"])
    def test_out_of_range_scale(self, capsys, scale):
        msg = _usage_error(
            capsys, ["run", gm("pagerank"), *PAGERANK_ARGS, "--scale", scale]
        )
        assert "--scale" in msg

    @pytest.mark.parametrize("workers", ["0", "-2", "5000"])
    def test_out_of_range_workers(self, capsys, workers):
        msg = _usage_error(
            capsys,
            ["run", gm("pagerank"), *PAGERANK_ARGS, "--scale", "0.05",
             "--workers", workers],
        )
        assert "--workers" in msg

    def test_interp_validates_shape_too(self, capsys):
        _usage_error(
            capsys, ["interp", gm("avg_teen_cnt"), "--arg", "K=30", "--scale", "0"]
        )

    def test_malformed_arg_message(self, capsys):
        msg = _usage_error(
            capsys, ["run", gm("pagerank"), "--arg", "notanassignment"]
        )
        assert "notanassignment" in msg

    def test_bad_net_faults_spec(self, capsys):
        msg = _usage_error(
            capsys,
            ["run", gm("pagerank"), *PAGERANK_ARGS, "--scale", "0.05",
             "--net-faults", "drop=everything"],
        )
        assert "--net-faults" in msg

    def test_bad_heartbeat_spec(self, capsys):
        msg = _usage_error(
            capsys,
            ["run", gm("pagerank"), *PAGERANK_ARGS, "--scale", "0.05",
             "--heartbeat", "phi=verysuspicious"],
        )
        assert "--heartbeat" in msg

    def test_negative_max_restarts(self, capsys):
        _usage_error(
            capsys,
            ["run", gm("pagerank"), *PAGERANK_ARGS, "--scale", "0.05",
             "--heartbeat", "", "--max-restarts", "-1"],
        )

    def test_missing_graph_file(self, capsys):
        msg = _usage_error(
            capsys,
            ["run", gm("pagerank"), *PAGERANK_ARGS,
             "--graph-file", "/no/such/graph.txt"],
        )
        assert "graph.txt" in msg

    def test_corrupt_graph_file_reports_line(self, capsys, tmp_path):
        bad = tmp_path / "bad.txt"
        bad.write_text("# nodes: 3\n0 1\n1 nine\n")
        msg = _usage_error(
            capsys,
            ["run", gm("pagerank"), *PAGERANK_ARGS, "--graph-file", str(bad)],
        )
        assert f"{bad}:3:" in msg

    @pytest.mark.parametrize("bad", ["banana", "0", "64k@9", "4k@x"])
    def test_bad_mem_budget_spec(self, capsys, bad):
        msg = _usage_error(
            capsys,
            ["run", gm("pagerank"), *PAGERANK_ARGS, "--scale", "0.05",
             "--mem-budget", bad],
        )
        assert "--mem-budget" in msg

    def test_duplicate_mem_budget_specs(self, capsys):
        msg = _usage_error(
            capsys,
            ["run", gm("pagerank"), *PAGERANK_ARGS, "--scale", "0.05",
             "--mem-budget", "64k", "--mem-budget", "32k"],
        )
        assert "--mem-budget" in msg

    def test_spill_dir_without_budget(self, capsys):
        msg = _usage_error(
            capsys,
            ["run", gm("pagerank"), *PAGERANK_ARGS, "--scale", "0.05",
             "--spill-dir", "/tmp"],
        )
        assert "--spill-dir" in msg

    @pytest.mark.parametrize(
        "spec,expected",
        [
            ("kill:banana", "expected kill:WORKER@STEP"),
            ("hang:1", "expected hang:WORKER@STEP"),
            ("boom:1@2", "unknown kind 'boom'"),
        ],
    )
    def test_malformed_real_fault_specs(self, capsys, spec, expected):
        msg = _usage_error(
            capsys,
            ["run", gm("pagerank"), *PAGERANK_ARGS, "--scale", "0.05",
             "--backend", "mp", "--checkpoint-every", "2",
             "--inject-fault", spec],
        )
        assert "--inject-fault" in msg
        assert expected in msg

    @pytest.mark.parametrize("deadline", ["0", "-1.5"])
    def test_nonpositive_exchange_deadline(self, capsys, deadline):
        msg = _usage_error(
            capsys,
            ["run", gm("pagerank"), *PAGERANK_ARGS, "--scale", "0.05",
             "--backend", "mp", "--exchange-deadline", deadline],
        )
        assert "--exchange-deadline must be > 0" in msg

    @pytest.mark.parametrize("kind", ["kill", "hang"])
    def test_real_faults_refused_off_mp(self, capsys, kind):
        msg = _usage_error(
            capsys,
            ["run", gm("pagerank"), *PAGERANK_ARGS, "--scale", "0.05",
             "--checkpoint-every", "2", "--inject-fault", f"{kind}:1@2"],
        )
        assert "real process faults" in msg
        assert "--backend mp" in msg

    def test_real_fault_worker_out_of_range(self, capsys):
        msg = _usage_error(
            capsys,
            ["run", gm("pagerank"), *PAGERANK_ARGS, "--scale", "0.05",
             "--backend", "mp", "--workers", "2", "--checkpoint-every", "2",
             "--inject-fault", "kill:5@2"],
        )
        assert "names worker 5 but --workers is 2" in msg

    def test_malformed_fault_spec_fails_before_graph_load(self, capsys):
        # Builders run before the graph loads: the bad spec wins over a
        # graph file that does not even exist.
        msg = _usage_error(
            capsys,
            ["run", gm("pagerank"), *PAGERANK_ARGS,
             "--checkpoint-every", "2", "--inject-fault", "kill:banana",
             "--backend", "mp", "--graph-file", "/nonexistent/never.el"],
        )
        assert "--inject-fault" in msg

    def test_help_documents_real_faults_and_deadline(self, capsys):
        with pytest.raises(SystemExit) as err:
            main(["run", "--help"])
        assert err.value.code == 0
        out = capsys.readouterr().out
        assert "--exchange-deadline" in out
        assert "kill:W@S" in out
        assert "hang:W@S" in out


class TestNetAndSupervisorFlags:
    def test_net_faults_run_meters_and_roundtrips_json(self, tmp_path, capsys):
        import json

        path = tmp_path / "metrics.json"
        code = main(
            ["run", gm("pagerank"), *PAGERANK_ARGS, "--scale", "0.05",
             "--net-faults", "drop=0.1,dup=0.05,reorder=0.1,seed=7",
             "--metrics-json", str(path)],
        )
        assert code == 0
        ledger = json.loads(path.read_text())
        assert ledger["messages_dropped"] > 0
        assert ledger["messages_duplicated"] > 0
        assert ledger["packets_retransmitted"] > 0
        assert "transport: dropped=" in capsys.readouterr().out

    def test_heartbeat_detected_crash_prints_supervisor_report(self, capsys, tmp_path):
        import json

        path = tmp_path / "metrics.json"
        code = main(
            ["run", gm("pagerank"), *PAGERANK_ARGS, "--scale", "0.05",
             "--checkpoint-every", "2", "--heartbeat", "crash=1@2",
             "--metrics-json", str(path)],
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "supervisor: worker 1 declared dead at superstep 2" in out
        assert "-> restarted" in out
        ledger = json.loads(path.read_text())
        assert ledger["restarts"] == 1
        assert ledger["heartbeats_missed"] > 0

    def test_exhausted_restart_budget_degrades(self, capsys, tmp_path):
        import json

        path = tmp_path / "metrics.json"
        code = main(
            ["run", gm("pagerank"), *PAGERANK_ARGS, "--scale", "0.05",
             "--checkpoint-every", "2", "--heartbeat", "crash=1@2",
             "--max-restarts", "0", "--metrics-json", str(path)],
        )
        assert code == 0  # degraded, not dead: partial results still report
        out = capsys.readouterr().out
        assert "supervisor: DEGRADED (halt_reason=unrecoverable)" in out
        assert json.loads(path.read_text())["halt_reason"] == "unrecoverable"

    def test_trace_carries_net_and_supervisor_events(self, tmp_path):
        from repro.obs import load_jsonl

        path = tmp_path / "trace.jsonl"
        code = main(
            ["run", gm("pagerank"), *PAGERANK_ARGS, "--scale", "0.05",
             "--checkpoint-every", "2", "--net-faults", "drop=0.1,seed=7",
             "--heartbeat", "crash=1@2", "--trace", str(path)],
        )
        assert code == 0
        names = [e["name"] for e in load_jsonl(path)]
        assert "net.route" in names
        assert "supervisor.suspect" in names and "supervisor.restart" in names


class TestMemBudgetFlags:
    def test_tight_budget_spills_and_reports(self, capsys, tmp_path):
        import json

        path = tmp_path / "metrics.json"
        code = main(
            ["run", gm("pagerank"), *PAGERANK_ARGS, "--scale", "0.05",
             "--mem-budget", "8k", "--spill-dir", str(tmp_path),
             "--metrics-json", str(path)],
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "memory: budget=8192" in out
        ledger = json.loads(path.read_text())
        assert ledger["halt_reason"] != "out_of_memory"
        assert ledger["spilled_bytes"] > 0
        # the private spill directory is always removed
        assert not list(tmp_path.glob("gm-pregel-mem-*"))

    def test_unsatisfiable_budget_reports_oom(self, capsys, tmp_path):
        import json

        path = tmp_path / "metrics.json"
        code = main(
            ["run", gm("pagerank"), *PAGERANK_ARGS, "--scale", "0.05",
             "--mem-budget", "64", "--metrics-json", str(path)],
        )
        assert code == 0  # degraded, not dead: structured report, no traceback
        out = capsys.readouterr().out
        assert "memory: OUT OF MEMORY" in out
        assert json.loads(path.read_text())["halt_reason"] == "out_of_memory"

    def test_targeted_worker_budget_accepted(self, capsys):
        code = main(
            ["run", gm("pagerank"), *PAGERANK_ARGS, "--scale", "0.05",
             "--mem-budget", "16k@1"],
        )
        assert code == 0
        assert "memory: budget=" in capsys.readouterr().out

    def test_spill_dir_is_created_if_missing(self, capsys, tmp_path):
        nested = tmp_path / "not" / "yet" / "there"
        code = main(
            ["run", gm("pagerank"), *PAGERANK_ARGS, "--scale", "0.05",
             "--mem-budget", "8k", "--spill-dir", str(nested)],
        )
        assert code == 0
        assert nested.is_dir() and not list(nested.iterdir())

    def test_unusable_spill_dir_is_a_usage_error(self, capsys):
        _usage_error(
            capsys,
            ["run", gm("pagerank"), *PAGERANK_ARGS, "--scale", "0.05",
             "--mem-budget", "8k", "--spill-dir", "/dev/null/nope"],
        )


class TestRealFaultFlags:
    """End-to-end real process faults through the CLI (mp backend)."""

    needs_mp = pytest.mark.skipif(
        not __import__("repro.pregel.backend.mp", fromlist=["mp_available"]).mp_available(),
        reason="needs fork start-method and multiprocessing.shared_memory",
    )

    @needs_mp
    def test_kill_run_recovers_and_reports(self, capsys):
        code = main(
            ["run", gm("pagerank"), *PAGERANK_ARGS, "--scale", "0.05",
             "--backend", "mp", "--workers", "2", "--checkpoint-every", "2",
             "--inject-fault", "kill:1@1", "--exchange-deadline", "10"],
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "backend=mp" in out
        assert "survived 1 worker crash(es)" in out

    @needs_mp
    def test_hang_run_times_out_and_recovers(self, capsys):
        code = main(
            ["run", gm("pagerank"), *PAGERANK_ARGS, "--scale", "0.05",
             "--backend", "mp", "--workers", "2", "--checkpoint-every", "2",
             "--recovery", "confined", "--inject-fault", "hang:0@1",
             "--exchange-deadline", "0.75"],
        )
        assert code == 0
        assert "survived 1 worker crash(es)" in capsys.readouterr().out

    @needs_mp
    def test_supervised_kill_prints_cause(self, capsys):
        code = main(
            ["run", gm("pagerank"), *PAGERANK_ARGS, "--scale", "0.05",
             "--backend", "mp", "--workers", "2", "--checkpoint-every", "2",
             "--heartbeat", "interval=1,phi=4,deadline=5",
             "--inject-fault", "kill:1@1", "--exchange-deadline", "10"],
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "cause=died" in out
        assert "-> restarted" in out
